//! Detailed register allocation (paper §IV-F).
//!
//! "We perform detailed register allocation using conventional graph
//! coloring algorithms. We are guaranteed to be able to color each
//! register bank graph using the given number of registers because we have
//! analyzed the variable lifetimes in the instruction selection and
//! scheduling step." Live ranges are half-open `[def, last_use)` over the
//! schedule's step indices (reads happen before writes within a VLIW
//! instruction, so a value dying at step *t* frees its register for a
//! value defined at *t*).

use crate::budget::{Budget, Exhaustion};
use crate::cover::Schedule;
use crate::covergraph::{CnId, CoverGraph, Operand};
use aviv_isdl::{BankId, Target};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg {
    /// The register bank.
    pub bank: BankId,
    /// Register index within the bank.
    pub index: u32,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.bank.0, self.index)
    }
}

/// Register assignment for every value-producing cover node.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    regs: HashMap<CnId, Reg>,
}

impl Allocation {
    /// The register holding `id`'s value.
    ///
    /// # Panics
    ///
    /// Panics if `id` produces no value or was never allocated.
    pub fn reg(&self, id: CnId) -> Reg {
        self.regs[&id]
    }

    /// Register lookup without panicking.
    pub fn get(&self, id: CnId) -> Option<Reg> {
        self.regs.get(&id).copied()
    }

    /// Number of allocated values.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when nothing was allocated (an empty block).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The full assignment sorted by node id — the deterministic order
    /// the snapshot codec ([`crate::persist`]) writes to disk.
    pub(crate) fn entries_sorted(&self) -> Vec<(CnId, Reg)> {
        let mut entries: Vec<(CnId, Reg)> = self.regs.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort();
        entries
    }

    /// Reassemble an allocation from decoded snapshot entries.
    pub(crate) fn from_entries(entries: Vec<(CnId, Reg)>) -> Allocation {
        Allocation {
            regs: entries.into_iter().collect(),
        }
    }

    /// Delete the assignment with the smallest node id — the fault
    /// harness's "malformed allocation" corruption. Returns the removed
    /// node, or `None` if the allocation was already empty.
    pub(crate) fn corrupt_one(&mut self) -> Option<CnId> {
        let victim = self.regs.keys().min().copied()?;
        self.regs.remove(&victim);
        Some(victim)
    }
}

/// Coloring failure — cannot happen when the schedule honored the
/// pressure bounds (see [`crate::cover::verify_schedule`]); reported
/// rather than panicking so property tests can surface violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAllocError {
    /// The bank that could not be colored.
    pub bank: BankId,
    /// Values needing simultaneous registers.
    pub clique_size: usize,
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bank {} is uncolorable ({} simultaneously live values)",
            self.bank, self.clique_size
        )
    }
}

impl Error for RegAllocError {}

/// Failure of the budgeted allocator: either a genuine coloring failure
/// or budget exhaustion partway through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocFailure {
    /// A bank could not be colored (see [`RegAllocError`]).
    Uncolorable(RegAllocError),
    /// The cooperative [`Budget`] ran out mid-allocation.
    Budget(Exhaustion),
}

impl fmt::Display for AllocFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocFailure::Uncolorable(e) => e.fmt(f),
            AllocFailure::Budget(why) => write!(f, "allocation budget ran out: {why}"),
        }
    }
}

impl Error for AllocFailure {}

/// Color each register bank's interference graph.
///
/// # Errors
///
/// Returns [`RegAllocError`] when a bank needs more registers than it has
/// — impossible for schedules that passed the covering pressure bound.
pub fn allocate(
    graph: &CoverGraph,
    target: &Target,
    schedule: &Schedule,
) -> Result<Allocation, RegAllocError> {
    match allocate_budgeted(graph, target, schedule, &Budget::unlimited()) {
        Ok(alloc) => Ok(alloc),
        Err(AllocFailure::Uncolorable(e)) => Err(e),
        // Unreachable with an unlimited budget; keep the panic-free
        // contract anyway by reporting it as a zero-size failure.
        Err(AllocFailure::Budget(_)) => Err(RegAllocError {
            bank: BankId(0),
            clique_size: 0,
        }),
    }
}

/// [`allocate`] under a cooperative [`Budget`]: the interference-graph
/// build and the Chaitin simplify loop charge one unit per node pair or
/// simplify step, so pathological blocks degrade instead of stalling.
///
/// # Errors
///
/// [`AllocFailure::Uncolorable`] for genuine coloring failures,
/// [`AllocFailure::Budget`] when the allotment runs out.
pub fn allocate_budgeted(
    graph: &CoverGraph,
    target: &Target,
    schedule: &Schedule,
    budget: &Budget,
) -> Result<Allocation, AllocFailure> {
    let n = graph.len();
    let step_of = schedule.step_of(n);
    let end = schedule.steps.len();

    let mut pinned = vec![false; n];
    for &(_, operand) in graph.live_out() {
        if let Operand::Cn(c) = operand {
            pinned[c.index()] = true;
        }
    }

    // Live ranges per bank.
    struct Range {
        id: CnId,
        def: usize,
        last: usize,
    }
    let mut per_bank: HashMap<BankId, Vec<Range>> = HashMap::new();
    for id in graph.alive() {
        let Some(bank) = graph.node(id).dest_bank(target) else {
            continue;
        };
        let def = step_of[id.index()].expect("alive nodes are scheduled");
        let mut last = def;
        for &u in graph.uses(id) {
            if let Some(ut) = step_of[u.index()] {
                last = last.max(ut);
            }
        }
        if pinned[id.index()] {
            last = end; // live past the block
        }
        per_bank
            .entry(bank)
            .or_default()
            .push(Range { id, def, last });
    }

    let mut alloc = Allocation::default();
    for (bank, ranges) in {
        let mut v: Vec<_> = per_bank.into_iter().collect();
        v.sort_by_key(|(b, _)| *b);
        v
    } {
        let k = target.machine.bank(bank).size as usize;
        let m = ranges.len();
        // Interference: half-open [def, last) ranges overlapping. A value
        // with last == def (defined, consumed same-step — impossible — or
        // never consumed) interferes with nothing.
        let overlaps = |a: &Range, b: &Range| {
            let (a0, a1) = (a.def, a.last);
            let (b0, b1) = (b.def, b.last);
            // Ranges [a0, a1) and [b0, b1); a def always occupies its
            // cycle, so treat an empty range as [def, def+ε).
            let a1 = a1.max(a0 + 1);
            let b1 = b1.max(b0 + 1);
            a0 < b1 && b0 < a1
        };
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
        for i in 0..m {
            budget.charge(m as u64).map_err(AllocFailure::Budget)?;
            for j in (i + 1)..m {
                if overlaps(&ranges[i], &ranges[j]) {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        // Chaitin simplify: interval graphs are perfect, so with the
        // pressure bound ≤ k this always succeeds.
        let mut removed = vec![false; m];
        let mut stack = Vec::with_capacity(m);
        for _ in 0..m {
            budget.charge(1).map_err(AllocFailure::Budget)?;
            let pick = (0..m)
                .filter(|&i| !removed[i])
                .min_by_key(|&i| {
                    (
                        adj[i].iter().filter(|&&j| !removed[j]).count(),
                        ranges[i].id,
                    )
                })
                .expect("m nodes to simplify");
            let deg = adj[pick].iter().filter(|&&j| !removed[j]).count();
            if deg >= k {
                // Not simplifiable under k registers: the schedule must
                // have violated its own pressure bound.
                return Err(AllocFailure::Uncolorable(RegAllocError {
                    bank,
                    clique_size: deg + 1,
                }));
            }
            removed[pick] = true;
            stack.push(pick);
        }
        let mut color: Vec<Option<u32>> = vec![None; m];
        while let Some(i) = stack.pop() {
            let mut used = vec![false; k];
            for &j in &adj[i] {
                if let Some(c) = color[j] {
                    used[c as usize] = true;
                }
            }
            let c = (0..k as u32)
                .find(|&c| !used[c as usize])
                .ok_or(AllocFailure::Uncolorable(RegAllocError {
                    bank,
                    clique_size: k + 1,
                }))?;
            color[i] = Some(c);
            alloc.regs.insert(ranges[i].id, Reg { bank, index: c });
        }
    }
    Ok(alloc)
}

/// Check an allocation: every value has a register in its bank, and no
/// two simultaneously-live values share one. Test oracle.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_allocation(
    graph: &CoverGraph,
    target: &Target,
    schedule: &Schedule,
    alloc: &Allocation,
) -> Result<(), String> {
    let n = graph.len();
    let step_of = schedule.step_of(n);
    let end = schedule.steps.len();
    let mut pinned = vec![false; n];
    for &(_, operand) in graph.live_out() {
        if let Operand::Cn(c) = operand {
            pinned[c.index()] = true;
        }
    }
    let mut ranges: Vec<(CnId, BankId, usize, usize)> = Vec::new();
    for id in graph.alive() {
        let Some(bank) = graph.node(id).dest_bank(target) else {
            continue;
        };
        let reg = alloc
            .get(id)
            .ok_or_else(|| format!("{id} has no register"))?;
        if reg.bank != bank {
            return Err(format!("{id} allocated in wrong bank"));
        }
        if reg.index >= target.machine.bank(bank).size {
            return Err(format!("{id} register index out of range"));
        }
        let def = step_of[id.index()].expect("alive nodes are scheduled");
        let mut last = def;
        for &u in graph.uses(id) {
            if let Some(ut) = step_of[u.index()] {
                last = last.max(ut);
            }
        }
        if pinned[id.index()] {
            last = end;
        }
        ranges.push((id, bank, def, last.max(def + 1)));
    }
    for i in 0..ranges.len() {
        for j in (i + 1)..ranges.len() {
            let (a, b) = (&ranges[i], &ranges[j]);
            if a.1 == b.1 && alloc.reg(a.0) == alloc.reg(b.0) && a.2 < b.3 && b.2 < a.3 {
                return Err(format!(
                    "{} and {} share {} while both live",
                    a.0,
                    b.0,
                    alloc.reg(a.0)
                ));
            }
        }
    }
    Ok(())
}
