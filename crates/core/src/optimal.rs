//! Optimal-schedule reference via branch and bound.
//!
//! The paper's tables compare AVIV against hand-coded solutions that "are
//! all optimal". This module reproduces that reference column: it
//! enumerates **every** functional-unit assignment and, for each, runs a
//! branch-and-bound search over schedules with memoization on the covered
//! set (sound because the live-value set is a function of the covered
//! set) and admissible lower bounds (per-resource counts and the critical
//! path). Spills are not explored — matching the paper, where the optimal
//! solutions for the register-constrained examples were spill-free.
//!
//! The search is exponential; use it only for blocks of the sizes the
//! paper evaluates (≲ 16 operations). A state budget caps runaway cases,
//! in which case the result is flagged inexact.

use crate::assign::{explore, Assignment};
use crate::cliques::{gen_max_cliques, legalize, ParallelismMatrix};
use crate::covergraph::{CnId, CoverGraph, Operand, Resource};
use crate::options::CodegenOptions;
use aviv_ir::{BitSet, BlockDag};
use aviv_isdl::Target;
use aviv_splitdag::SplitNodeDag;
use std::collections::HashMap;

/// Result of the optimal search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimalResult {
    /// Best instruction count found.
    pub instructions: usize,
    /// True when the search completed within budget (the count is provably
    /// optimal over spill-free schedules of all assignments).
    pub exact: bool,
    /// Assignments whose schedule search ran.
    pub assignments_searched: usize,
}

/// Configuration for [`optimal_block`].
#[derive(Debug, Clone, Copy)]
pub struct OptimalConfig {
    /// Cap on branch-and-bound states per assignment.
    pub state_budget: usize,
    /// Cap on assignments enumerated.
    pub max_assignments: usize,
}

impl Default for OptimalConfig {
    fn default() -> Self {
        OptimalConfig {
            state_budget: 2_000_000,
            max_assignments: 1 << 20,
        }
    }
}

/// Exhaustively search for the smallest spill-free implementation of the
/// block. Returns `None` when no assignment admits a spill-free schedule
/// under the machine's register resources.
///
/// ```
/// use aviv::{optimal_block, OptimalConfig};
/// use aviv_ir::parse_function;
/// use aviv_isdl::{archs, Target};
/// use aviv_splitdag::SplitNodeDag;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = parse_function("func f(a, b) { x = a + b; }")?;
/// let target = Target::new(archs::example_arch(4));
/// let sndag = SplitNodeDag::build(&f.blocks[0].dag, &target)?;
/// let best = optimal_block(&f.blocks[0].dag, &sndag, &target,
///                          &OptimalConfig::default()).expect("schedulable");
/// assert_eq!(best.instructions, 4); // two loads, the add, the store
/// # Ok(())
/// # }
/// ```
pub fn optimal_block(
    dag: &BlockDag,
    sndag: &SplitNodeDag,
    target: &Target,
    config: &OptimalConfig,
) -> Option<OptimalResult> {
    let mut options = CodegenOptions::heuristics_off();
    options.max_assignments = config.max_assignments;
    let result = explore(dag, sndag, target, &options);
    let mut best: Option<usize> = None;
    let mut exact = !result.truncated;
    let mut searched = 0usize;
    for assignment in &result.assignments {
        searched += 1;
        let graph = CoverGraph::build(dag, sndag, target, assignment);
        let mut bb = Bb::new(&graph, target, config.state_budget);
        // Seed the incumbent from previous assignments for tighter pruning.
        if let Some(b) = best {
            bb.best = b;
        }
        let (found, complete) = bb.search(assignment);
        if !complete {
            exact = false;
        }
        if let Some(steps) = found {
            best = Some(best.map_or(steps, |b| b.min(steps)));
        }
    }
    best.map(|instructions| OptimalResult {
        instructions,
        exact,
        assignments_searched: searched,
    })
}

struct Bb<'a> {
    graph: &'a CoverGraph,
    target: &'a Target,
    alive: Vec<CnId>,
    /// Longest path (in steps) from each node to a sink, inclusive.
    height: Vec<usize>,
    pinned: BitSet,
    memo: HashMap<Vec<u64>, usize>,
    best: usize,
    found: bool,
    states: usize,
    budget: usize,
}

impl<'a> Bb<'a> {
    fn new(graph: &'a CoverGraph, target: &'a Target, budget: usize) -> Self {
        let alive = graph.alive();
        let n = graph.len();
        let mut height = vec![0usize; n];
        // Heights: process in reverse topological order (uses have larger
        // ids except after spills, which never occur here — optimal mode
        // never mutates the graph).
        for &id in alive.iter().rev() {
            let h = graph
                .uses(id)
                .iter()
                .map(|u| height[u.index()])
                .max()
                .unwrap_or(0);
            // Longest chain of instructions starting at `id`, inclusive:
            // a sink needs exactly one step.
            height[id.index()] = h + 1;
        }
        let mut pinned = BitSet::new(n);
        for &(_, op) in graph.live_out() {
            if let Operand::Cn(c) = op {
                pinned.insert(c.index());
            }
        }
        Bb {
            graph,
            target,
            alive,
            height,
            pinned,
            memo: HashMap::new(),
            best: usize::MAX,
            found: false,
            states: 0,
            budget,
        }
    }

    /// Run the search; returns (best steps if any schedule found, whether
    /// the search completed within budget).
    fn search(&mut self, _assignment: &Assignment) -> (Option<usize>, bool) {
        let covered = BitSet::new(self.graph.len());
        self.dfs(&covered, 0);
        let complete = self.states <= self.budget;
        (self.found.then_some(self.best), complete)
    }

    fn lower_bound(&self, covered: &BitSet) -> usize {
        let mut per_unit = vec![0usize; self.target.machine.units().len()];
        let mut per_bus = vec![0usize; self.target.machine.buses().len()];
        let mut cp = 0usize;
        for &id in &self.alive {
            if covered.contains(id.index()) {
                continue;
            }
            match self.graph.node(id).resource() {
                Resource::Unit(u) => per_unit[u.index()] += 1,
                Resource::Bus(b) => per_bus[b.index()] += 1,
            }
            cp = cp.max(self.height[id.index()]);
        }
        let mut lb = cp;
        for c in per_unit {
            lb = lb.max(c);
        }
        for (bi, c) in per_bus.into_iter().enumerate() {
            let cap = self.target.machine.buses()[bi].capacity as usize;
            lb = lb.max(c.div_ceil(cap));
        }
        lb
    }

    fn dfs(&mut self, covered: &BitSet, steps: usize) {
        self.states += 1;
        if self.states > self.budget {
            return;
        }
        let remaining = self.alive.len() - covered.count();
        if remaining == 0 {
            if steps < self.best {
                self.best = steps;
            }
            self.found = true;
            return;
        }
        if steps + self.lower_bound(covered) >= self.best {
            return;
        }
        // Memo: dominated if we reached this covered set in fewer steps.
        let key = covered_key(covered);
        if let Some(&prev) = self.memo.get(&key) {
            if prev <= steps {
                return;
            }
        }
        self.memo.insert(key, steps);

        // Ready nodes.
        let ready: Vec<CnId> = self
            .alive
            .iter()
            .copied()
            .filter(|&n| {
                !covered.contains(n.index())
                    && self
                        .graph
                        .preds(n)
                        .iter()
                        .all(|p| covered.contains(p.index()))
            })
            .collect();
        if ready.is_empty() {
            return;
        }

        // Candidate instructions: maximal legal cliques of the ready set,
        // pressure-filtered; plus feasible singletons as a completeness
        // fallback under pressure.
        let matrix = ParallelismMatrix::build(self.graph, self.target, &ready, None);
        let raw = gen_max_cliques(&matrix);
        let legal = legalize(raw, &matrix, self.graph, self.target);
        let mut groups: Vec<Vec<CnId>> = legal
            .iter()
            .map(|c| c.iter().map(|i| matrix.ids[i]).collect::<Vec<_>>())
            .collect();
        for &r in &ready {
            if !groups.iter().any(|g| g.len() == 1 && g[0] == r) {
                groups.push(vec![r]);
            }
        }
        // Bigger groups first: reach good incumbents early.
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));

        for group in groups {
            if !self.pressure_ok(covered, &group) {
                continue;
            }
            let mut next = covered.clone();
            for &id in &group {
                next.insert(id.index());
            }
            self.dfs(&next, steps + 1);
        }
    }

    fn pressure_ok(&self, covered: &BitSet, group: &[CnId]) -> bool {
        let mut pressure = vec![0i64; self.target.machine.banks().len()];
        // Live values after the step.
        for &id in &self.alive {
            let def_done = covered.contains(id.index()) || group.contains(&id);
            if !def_done {
                continue;
            }
            let Some(bank) = self.graph.node(id).dest_bank(self.target) else {
                continue;
            };
            let live = self.pinned.contains(id.index())
                || self
                    .graph
                    .uses(id)
                    .iter()
                    .any(|u| !covered.contains(u.index()) && !group.contains(u));
            if live {
                pressure[bank.index()] += 1;
            }
        }
        pressure
            .iter()
            .enumerate()
            .all(|(bi, &p)| p <= self.target.machine.banks()[bi].size as i64)
    }
}

fn covered_key(covered: &BitSet) -> Vec<u64> {
    // Compact, hashable key: the word representation via indices.
    let mut words = vec![0u64; covered.capacity().div_ceil(64).max(1)];
    for i in covered.iter() {
        words[i / 64] |= 1 << (i % 64);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::CodeGenerator;
    use aviv_ir::parse_function;
    use aviv_isdl::archs;

    fn optimal(src: &str, machine: aviv_isdl::Machine) -> OptimalResult {
        let f = parse_function(src).unwrap();
        let target = Target::new(machine);
        let sndag = SplitNodeDag::build(&f.blocks[0].dag, &target).unwrap();
        optimal_block(&f.blocks[0].dag, &sndag, &target, &OptimalConfig::default())
            .expect("spill-free schedule exists")
    }

    #[test]
    fn optimal_lower_bounds_hold_trivially() {
        // Single add: 2 loads (bus cap 1) + add + store = 4 exactly.
        let r = optimal("func f(a, b) { x = a + b; }", archs::example_arch(4));
        assert!(r.exact);
        assert_eq!(r.instructions, 4);
    }

    #[test]
    fn optimal_never_exceeds_heuristic() {
        let srcs = [
            "func f(a, b, c) { t = a + b; u = t * c; v = u - t; out = v; }",
            "func f(a, b, d, e) { out = ~((d * e) - (a + b)); }",
        ];
        for src in srcs {
            let f = parse_function(src).unwrap();
            let machine = archs::example_arch(4);
            let opt = optimal(src, machine.clone());
            let gen = CodeGenerator::new(machine);
            let mut syms = f.syms.clone();
            let mut layout = aviv_ir::MemLayout::for_function(&f);
            let h = gen
                .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                .unwrap();
            assert!(
                opt.instructions <= h.report.instructions,
                "{src}: optimal {} > heuristic {}",
                opt.instructions,
                h.report.instructions
            );
            // The heuristic should be close (the paper's headline claim).
            assert!(
                h.report.instructions <= opt.instructions + 2,
                "{src}: heuristic {} far from optimal {}",
                h.report.instructions,
                opt.instructions
            );
        }
    }

    #[test]
    fn optimal_on_single_alu_is_serial_with_pairing() {
        let r = optimal("func f(a, b, c) { x = (a + b) * c; }", archs::single_alu(4));
        // 4 bus ops (3 loads + 1 store) can pair with the 2 unit ops only
        // when independent: best is 5.
        assert_eq!(r.instructions, 5);
        assert!(r.exact);
    }
}
