//! VLIW program representation and assembly printing.
//!
//! A [`VliwInstruction`] mirrors the machines of the paper: one operation
//! slot per functional unit, a transfer field per bus use, and an optional
//! control operation (the conventional tree-covered control flow of
//! §III-C). The assembler and simulator in `aviv-vm` consume this
//! representation; [`VliwProgram::render`] prints human-readable assembly.

use crate::cover::Schedule;
use crate::covergraph::{CnId, CnKind, CoverGraph, Operand};
use crate::regalloc::{Allocation, Reg};
use aviv_ir::{MemLayout, SymbolTable};
use aviv_isdl::{BusId, Target, UnitId};
use aviv_verify::{Code, Diagnostic};
use std::collections::HashMap;
use std::fmt::Write as _;

/// An operand as it appears in assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsmOperand {
    /// A register.
    Reg(Reg),
    /// An immediate.
    Imm(i64),
}

impl std::fmt::Display for AsmOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmOperand::Reg(r) => write!(f, "{r}"),
            AsmOperand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// The opcode of a unit slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOpcode {
    /// A basic operation.
    Basic(aviv_ir::Op),
    /// A complex instruction (index into the machine's list).
    Complex(usize),
}

/// One functional-unit slot of a VLIW instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotOp {
    /// The opcode.
    pub opcode: SlotOpcode,
    /// Destination register.
    pub dst: Reg,
    /// Source operands.
    pub args: Vec<AsmOperand>,
}

/// One transfer field of a VLIW instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferOp {
    /// The bus carrying it.
    pub bus: BusId,
    /// What moves where.
    pub kind: TransferKind,
}

/// The kinds of bus activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferKind {
    /// Register-to-register move.
    Move {
        /// Source.
        from: Reg,
        /// Destination.
        to: Reg,
    },
    /// Load from a static address (named variable or spill slot).
    LoadVar {
        /// Memory address.
        addr: i64,
        /// Variable name (assembly comment).
        name: String,
        /// Destination register.
        to: Reg,
    },
    /// Store to a static address.
    StoreVar {
        /// The stored value.
        value: AsmOperand,
        /// Memory address.
        addr: i64,
        /// Variable name (assembly comment).
        name: String,
    },
    /// Load from a register-held address.
    LoadDyn {
        /// Address register.
        addr: Reg,
        /// Destination register.
        to: Reg,
    },
    /// Store to a register-held address.
    StoreDyn {
        /// Address register.
        addr: Reg,
        /// Value register.
        value: Reg,
    },
}

/// A control operation (at most one per instruction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlOp {
    /// Unconditional jump to an instruction index.
    Jump(usize),
    /// Branch to an instruction index when the condition is nonzero.
    BranchNz {
        /// The condition.
        cond: AsmOperand,
        /// Target instruction index.
        target: usize,
    },
    /// Return from the function.
    Return(Option<AsmOperand>),
}

/// One VLIW instruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VliwInstruction {
    /// Operation slots, indexed by unit.
    pub slots: Vec<Option<SlotOp>>,
    /// Bus transfer fields.
    pub xfers: Vec<TransferOp>,
    /// Control field.
    pub control: Option<ControlOp>,
}

impl VliwInstruction {
    /// An all-nop instruction for a machine with `n_units` units.
    pub fn nop(n_units: usize) -> Self {
        VliwInstruction {
            slots: vec![None; n_units],
            xfers: Vec::new(),
            control: None,
        }
    }

    /// True when nothing at all happens.
    pub fn is_nop(&self) -> bool {
        self.slots.iter().all(Option::is_none) && self.xfers.is_empty() && self.control.is_none()
    }
}

/// A complete VLIW program for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct VliwProgram {
    /// Machine name (for display).
    pub machine_name: String,
    /// The instructions.
    pub instructions: Vec<VliwInstruction>,
    /// First instruction index of each basic block, in block order.
    pub block_starts: Vec<usize>,
    /// Named variables and their memory addresses (inputs preloaded here,
    /// outputs read back from here).
    pub var_addrs: Vec<(String, i64)>,
}

impl VliwProgram {
    /// Render assembly text.
    pub fn render(&self, target: &Target) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "; machine {}", self.machine_name);
        for (i, inst) in self.instructions.iter().enumerate() {
            if let Some(b) = self.block_starts.iter().position(|&s| s == i) {
                let _ = writeln!(out, "bb{b}:");
            }
            let mut fields: Vec<String> = Vec::new();
            for (ui, slot) in inst.slots.iter().enumerate() {
                if let Some(s) = slot {
                    let unit = &target.machine.units()[ui];
                    let opname = match s.opcode {
                        SlotOpcode::Basic(op) => op.mnemonic().to_string(),
                        SlotOpcode::Complex(ci) => target.machine.complexes()[ci].name.clone(),
                    };
                    let args: Vec<String> = s
                        .args
                        .iter()
                        .map(std::string::ToString::to_string)
                        .collect();
                    fields.push(format!(
                        "{}: {} {}, {}",
                        unit.name,
                        opname,
                        s.dst,
                        args.join(", ")
                    ));
                }
            }
            for x in &inst.xfers {
                let bus = &target.machine.bus(x.bus).name;
                let desc = match &x.kind {
                    TransferKind::Move { from, to } => format!("mov {to} <- {from}"),
                    TransferKind::LoadVar { addr, name, to } => {
                        format!("ld {to} <- [{addr}] ;{name}")
                    }
                    TransferKind::StoreVar { value, addr, name } => {
                        format!("st [{addr}] <- {value} ;{name}")
                    }
                    TransferKind::LoadDyn { addr, to } => format!("ld {to} <- [{addr}]"),
                    TransferKind::StoreDyn { addr, value } => {
                        format!("st [{addr}] <- {value}")
                    }
                };
                fields.push(format!("{bus}: {desc}"));
            }
            if let Some(c) = &inst.control {
                let desc = match c {
                    ControlOp::Jump(t) => format!("jmp @{t}"),
                    ControlOp::BranchNz { cond, target } => format!("bnz {cond}, @{target}"),
                    ControlOp::Return(Some(v)) => format!("ret {v}"),
                    ControlOp::Return(None) => "ret".to_string(),
                };
                fields.push(format!("CTRL: {desc}"));
            }
            if fields.is_empty() {
                fields.push("nop".to_string());
            }
            let _ = writeln!(out, "  {i:4}: {{ {} }}", fields.join(" | "));
        }
        out
    }

    /// Instruction count (the paper's code-size cost).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

/// A `C006` diagnostic: emission received a malformed schedule or
/// allocation (see `docs/diagnostics.md`).
fn malformed(element: impl Into<String>, message: impl Into<String>) -> Diagnostic {
    Diagnostic::new(Code::C006, element, message)
}

fn allocated(alloc: &Allocation, id: CnId) -> Result<Reg, Diagnostic> {
    alloc
        .get(id)
        .ok_or_else(|| malformed(format!("{id}"), "cover node has no allocated register"))
}

/// Lower one scheduled, register-allocated block into instructions (no
/// control field yet — the function-level driver appends terminators).
///
/// # Errors
///
/// Returns a `C006` [`Diagnostic`] when the schedule or allocation is
/// malformed: a unit double-booked within one instruction, an immediate
/// where the field requires a register, or a value-producing cover node
/// with no allocated register. A well-formed plan never trips these.
pub fn emit_block(
    graph: &CoverGraph,
    target: &Target,
    schedule: &Schedule,
    alloc: &Allocation,
    syms: &SymbolTable,
    layout: &MemLayout,
) -> Result<Vec<VliwInstruction>, Diagnostic> {
    let n_units = target.machine.units().len();
    let mut out = Vec::with_capacity(schedule.steps.len());
    for step in &schedule.steps {
        let mut inst = VliwInstruction::nop(n_units);
        for &id in step {
            let node = graph.node(id);
            let reg_arg = |a: &Operand| -> Result<AsmOperand, Diagnostic> {
                match a {
                    Operand::Imm(v) => Ok(AsmOperand::Imm(*v)),
                    Operand::Cn(c) => allocated(alloc, *c).map(AsmOperand::Reg),
                }
            };
            let reg_only = |a: &Operand, what: &str| -> Result<Reg, Diagnostic> {
                match a {
                    Operand::Cn(c) => allocated(alloc, *c),
                    Operand::Imm(v) => Err(malformed(
                        format!("{id}"),
                        format!("{what} requires a register operand, got immediate #{v}"),
                    )),
                }
            };
            match &node.kind {
                CnKind::Op { unit, op, .. } => {
                    place_slot(
                        &mut inst,
                        *unit,
                        SlotOp {
                            opcode: SlotOpcode::Basic(*op),
                            dst: allocated(alloc, id)?,
                            args: node.args.iter().map(reg_arg).collect::<Result<_, _>>()?,
                        },
                    )?;
                }
                CnKind::Complex { unit, index, .. } => {
                    place_slot(
                        &mut inst,
                        *unit,
                        SlotOp {
                            opcode: SlotOpcode::Complex(*index),
                            dst: allocated(alloc, id)?,
                            args: node.args.iter().map(reg_arg).collect::<Result<_, _>>()?,
                        },
                    )?;
                }
                CnKind::Move { bus, .. } => {
                    let from = reg_only(&node.args[0], "move source")?;
                    inst.xfers.push(TransferOp {
                        bus: *bus,
                        kind: TransferKind::Move {
                            from,
                            to: allocated(alloc, id)?,
                        },
                    });
                }
                CnKind::LoadVar { sym, bus, .. } => {
                    inst.xfers.push(TransferOp {
                        bus: *bus,
                        kind: TransferKind::LoadVar {
                            addr: layout.addr(*sym),
                            name: syms.name(*sym).to_string(),
                            to: allocated(alloc, id)?,
                        },
                    });
                }
                CnKind::StoreVar { sym, bus, .. } => {
                    inst.xfers.push(TransferOp {
                        bus: *bus,
                        kind: TransferKind::StoreVar {
                            value: reg_arg(&node.args[0])?,
                            addr: layout.addr(*sym),
                            name: syms.name(*sym).to_string(),
                        },
                    });
                }
                CnKind::LoadDyn { bus, .. } => {
                    let addr = reg_only(&node.args[0], "dynamic load address")?;
                    inst.xfers.push(TransferOp {
                        bus: *bus,
                        kind: TransferKind::LoadDyn {
                            addr,
                            to: allocated(alloc, id)?,
                        },
                    });
                }
                CnKind::StoreDyn { bus, .. } => {
                    inst.xfers.push(TransferOp {
                        bus: *bus,
                        kind: TransferKind::StoreDyn {
                            addr: reg_only(&node.args[0], "dynamic store address")?,
                            value: reg_only(&node.args[1], "dynamic store value")?,
                        },
                    });
                }
            }
        }
        out.push(inst);
    }
    Ok(out)
}

fn place_slot(inst: &mut VliwInstruction, unit: UnitId, slot: SlotOp) -> Result<(), Diagnostic> {
    let cell = &mut inst.slots[unit.index()];
    if cell.is_some() {
        return Err(malformed(
            format!("{unit}"),
            "unit double-booked in one instruction",
        ));
    }
    *cell = Some(slot);
    Ok(())
}

/// Map live-out original nodes to the assembly operand holding them at
/// block end (used by the function driver for branch conditions and
/// return values).
///
/// # Errors
///
/// Returns a `C006` [`Diagnostic`] when a live-out cover node has no
/// allocated register.
pub fn live_out_operands(
    graph: &CoverGraph,
    alloc: &Allocation,
) -> Result<HashMap<aviv_ir::NodeId, AsmOperand>, Diagnostic> {
    let mut out = HashMap::new();
    for &(orig, operand) in graph.live_out() {
        let a = match operand {
            Operand::Imm(v) => AsmOperand::Imm(v),
            Operand::Cn(c) => AsmOperand::Reg(allocated(alloc, c)?),
        };
        out.insert(orig, a);
    }
    Ok(out)
}
