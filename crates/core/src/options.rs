//! Code-generation options.
//!
//! "AVIV incorporates multiple heuristics that can be turned off if
//! desired" (paper §VI) — the parenthesized columns of Table I come from
//! running with every heuristic disabled. Each heuristic is a first-class
//! toggle here so the ablation benchmarks can flip them independently.

use crate::budget::CancelToken;
use crate::faults::FaultConfig;

/// Tunable heuristics of the covering engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Prune split-node assignment branches to the minimum incremental
    /// cost at each node (§IV-A). When `false`, *all* possible functional
    /// unit assignments are generated — the paper's "heuristics off" mode.
    pub prune_assignments: bool,
    /// Keep alternatives whose incremental cost is within this slack of
    /// the per-node minimum (0 reproduces the paper's prune-to-minimum
    /// rule exactly; 1 explores near-ties and measurably improves code
    /// quality at a small CPU cost).
    pub prune_slack: i64,
    /// Cap on branches kept alive during assignment exploration (applied
    /// only when `prune_assignments`; ties at the minimum incremental cost
    /// are all kept, then the frontier is trimmed to this many by
    /// accumulated cost).
    pub assignment_beam: usize,
    /// How many of the lowest-cost assignments to explore in detail.
    pub assignments_to_explore: usize,
    /// Hard cap on the total number of assignments enumerated, even with
    /// pruning off (guards the exhaustive mode against combinatorial
    /// explosion; `usize::MAX` reproduces the paper's unbounded runs).
    pub max_assignments: usize,
    /// Merge only nodes whose levels from the top and from the bottom of
    /// the solution DAG are within this window (§IV-C.2). `None` disables
    /// the heuristic (all maximal cliques are generated).
    pub clique_level_window: Option<u32>,
    /// Use the lookahead cost function to break covering ties (§IV-D).
    pub lookahead: bool,
    /// Run the post-allocation peephole pass (§IV-G).
    pub peephole: bool,
    /// Add a register-pressure term to the assignment cost function —
    /// the paper's stated ongoing work ("modifying the initial functional
    /// unit assignment cost function to incorporate register resource
    /// limits so that it can detect assignments that are likely to
    /// require spills"). Off by default to match the published
    /// algorithm; the ablation bench measures its effect.
    pub pressure_aware_assignment: bool,
    /// Worker threads for per-block covering in `compile_function`: `1`
    /// (the default) plans blocks in the calling thread; `0` uses one
    /// worker per available CPU core; any other value caps the pool at
    /// that many workers. Output is byte-identical for every setting —
    /// blocks are planned against an immutable symbol-table snapshot and
    /// merged in block order.
    pub jobs: usize,
    /// Run the pipeline invariant verifier ([`crate::invariants`]) after
    /// split-node DAG construction, covering, clique scheduling,
    /// register allocation, and emission, failing compilation with
    /// [`crate::CodegenError::Invariant`] on any violation. On by
    /// default in debug builds, off in release (`avivc --verify` turns
    /// it on).
    pub verify: bool,
    /// Run the global liveness solver ([`aviv_ir::dataflow`]) before
    /// covering and drop dead code — stores shadowed on every path and
    /// the nodes only they kept alive — so dead values never inflate
    /// register pressure during covering. Semantics-preserving (every
    /// named variable stays observable at exit) and on by default;
    /// disable to compile the DAGs exactly as written.
    pub exact_liveness: bool,
    /// Node-expansion fuel per block *per ladder rung* (`avivc --fuel`).
    /// The hot loops of exploration, clique generation, covering, and
    /// register allocation charge one unit per expansion; on exhaustion
    /// the block steps down the degradation ladder (see
    /// [`crate::codegen::CoverMode`]) with a fresh allotment, and the
    /// final rung runs unbudgeted (its register demand is bounded, so it
    /// terminates). `None` (the default) is unlimited — outputs are
    /// byte-identical to a run without budgets.
    pub fuel: Option<u64>,
    /// Wall-clock deadline for the whole function compile in
    /// milliseconds (`avivc --timeout-ms`), shared by every block.
    /// Exceeding it degrades blocks exactly like fuel exhaustion, so the
    /// compile still finishes with correct (if slower) code shortly
    /// after the deadline rather than aborting. Inherently
    /// nondeterministic; prefer [`CodegenOptions::fuel`] when
    /// reproducibility matters. `None` disables the deadline.
    pub deadline_ms: Option<u64>,
    /// Use the admissible per-block lower bounds from
    /// `aviv_verify::analyze` to cut dominated partial covers inside the
    /// lookahead simulation: once a candidate provably cannot beat the
    /// best tie-break estimate seen so far, its rollout is abandoned.
    /// Prunes only futures that cannot win, so emitted code is
    /// byte-identical with the flag on or off — only the node-expansion
    /// count ([`crate::BlockReport::node_expansions`]) drops. On by
    /// default.
    pub analysis_bounds: bool,
    /// Deterministic fault injection at stage boundaries (see
    /// [`crate::faults`]). `None` (the default) injects nothing; tests
    /// and the CI fuzz-smoke job set a seeded config to exercise the
    /// ladder, panic isolation, and structured-error paths.
    pub faults: Option<FaultConfig>,
    /// Cooperative cancellation handle (see [`CancelToken`]): threaded
    /// into every per-rung [`crate::Budget`] — including the otherwise
    /// unbudgeted spill-all rung and salvage tails — so firing it aborts
    /// the compile with [`crate::CodegenError::Cancelled`] within one
    /// budget-check quantum. `None` (the default) makes the compile
    /// uncancellable. Excluded from
    /// [`planning_fingerprint`](CodegenOptions::planning_fingerprint):
    /// like budgets, cancellation decides only *whether* a plan is
    /// produced, never what a complete plan contains.
    pub cancel: Option<CancelToken>,
}

impl CodegenOptions {
    /// The paper's default configuration: all heuristics on.
    pub fn heuristics_on() -> Self {
        CodegenOptions {
            prune_assignments: true,
            prune_slack: 1,
            assignment_beam: 128,
            assignments_to_explore: 8,
            max_assignments: 1 << 20,
            clique_level_window: Some(2),
            lookahead: true,
            peephole: true,
            analysis_bounds: true,
            pressure_aware_assignment: false,
            jobs: 1,
            verify: cfg!(debug_assertions),
            exact_liveness: true,
            fuel: None,
            deadline_ms: None,
            faults: None,
            cancel: None,
        }
    }

    /// A heavier heuristic operating point: wider pruning slack, bigger
    /// beam, more assignments explored in depth. Roughly 5–10× the CPU of
    /// [`CodegenOptions::heuristics_on`] and still orders of magnitude
    /// cheaper than exhaustive mode, with near-optimal code on the paper's
    /// benchmark sizes.
    pub fn thorough() -> Self {
        CodegenOptions {
            prune_assignments: true,
            prune_slack: 2,
            assignment_beam: 1024,
            assignments_to_explore: 64,
            max_assignments: 1 << 20,
            clique_level_window: Some(2),
            lookahead: true,
            peephole: true,
            analysis_bounds: true,
            pressure_aware_assignment: false,
            jobs: 1,
            verify: cfg!(debug_assertions),
            exact_liveness: true,
            fuel: None,
            deadline_ms: None,
            faults: None,
            cancel: None,
        }
    }

    /// The paper's "heuristics turned off" configuration: exhaustive
    /// assignment enumeration and unrestricted clique generation. Note
    /// (as the paper does) that this is *not* an exact algorithm — the
    /// covering step still schedules greedily.
    pub fn heuristics_off() -> Self {
        CodegenOptions {
            prune_assignments: false,
            prune_slack: 0,
            assignment_beam: usize::MAX,
            assignments_to_explore: usize::MAX,
            max_assignments: 1 << 22,
            clique_level_window: None,
            lookahead: true,
            peephole: true,
            analysis_bounds: true,
            pressure_aware_assignment: false,
            jobs: 1,
            verify: cfg!(debug_assertions),
            exact_liveness: true,
            fuel: None,
            deadline_ms: None,
            faults: None,
            cancel: None,
        }
    }
}

impl CodegenOptions {
    /// Set the worker-thread count (see [`CodegenOptions::jobs`]).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enable or disable the pipeline invariant verifier (see
    /// [`CodegenOptions::verify`]).
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Enable or disable solver-driven dead-code elimination before
    /// covering (see [`CodegenOptions::exact_liveness`]).
    pub fn with_exact_liveness(mut self, exact_liveness: bool) -> Self {
        self.exact_liveness = exact_liveness;
        self
    }

    /// Set the per-block, per-rung fuel allotment (see
    /// [`CodegenOptions::fuel`]).
    pub fn with_fuel(mut self, fuel: Option<u64>) -> Self {
        self.fuel = fuel;
        self
    }

    /// Set the function-wide wall-clock deadline in milliseconds (see
    /// [`CodegenOptions::deadline_ms`]).
    pub fn with_deadline_ms(mut self, deadline_ms: Option<u64>) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }

    /// Enable or disable lower-bound pruning in covering tie-breaks
    /// (see [`CodegenOptions::analysis_bounds`]).
    pub fn with_analysis_bounds(mut self, analysis_bounds: bool) -> Self {
        self.analysis_bounds = analysis_bounds;
        self
    }

    /// Set the fault-injection configuration (see
    /// [`CodegenOptions::faults`]).
    pub fn with_faults(mut self, faults: Option<FaultConfig>) -> Self {
        self.faults = faults;
        self
    }

    /// Attach a cooperative cancellation token (see
    /// [`CodegenOptions::cancel`]).
    pub fn with_cancel(mut self, cancel: Option<CancelToken>) -> Self {
        self.cancel = cancel;
        self
    }

    /// Stable fingerprint of the options that can change what a *complete*
    /// block plan looks like — the options component of plan-cache keys.
    ///
    /// Deliberately excluded, so that requests differing only in these
    /// still share cache entries:
    ///
    /// * [`jobs`](CodegenOptions::jobs) — pure parallelism; output is
    ///   byte-identical at every worker count by construction.
    /// * [`fuel`](CodegenOptions::fuel) /
    ///   [`deadline_ms`](CodegenOptions::deadline_ms) — budgets only decide
    ///   *whether* a block degrades; a plan that reports
    ///   [`complete`](crate::BlockReport::complete) (the only kind the
    ///   cache stores) is byte-identical to an unbudgeted run's.
    /// * [`exact_liveness`](CodegenOptions::exact_liveness) — dead-code
    ///   elimination runs before blocks are hashed, so its effect is
    ///   already in the block component of the key.
    /// * [`faults`](CodegenOptions::faults) — fault injection disables
    ///   caching entirely (injections are keyed on block position, not
    ///   content).
    /// * [`cancel`](CodegenOptions::cancel) — like budgets, cancellation
    ///   only decides whether a compile finishes; it never changes what a
    ///   complete plan contains.
    /// * [`analysis_bounds`](CodegenOptions::analysis_bounds) — the
    ///   bound cutoff prunes only candidate rollouts that provably
    ///   cannot change the covering decision, so complete plans are
    ///   byte-identical with it on or off.
    ///
    /// Everything else — the §IV/§VI heuristic knobs and the invariant
    /// verifier — is hashed.
    pub fn planning_fingerprint(&self) -> u64 {
        let mut h = aviv_ir::StableHasher::new();
        h.write_bool(self.prune_assignments);
        h.write_i64(self.prune_slack);
        h.write_u64(self.assignment_beam as u64);
        h.write_u64(self.assignments_to_explore as u64);
        h.write_u64(self.max_assignments as u64);
        match self.clique_level_window {
            Some(w) => {
                h.write_bool(true);
                h.write_u64(u64::from(w));
            }
            None => h.write_bool(false),
        }
        h.write_bool(self.lookahead);
        h.write_bool(self.peephole);
        h.write_bool(self.pressure_aware_assignment);
        h.write_bool(self.verify);
        h.finish()
    }
}

impl Default for CodegenOptions {
    fn default() -> Self {
        Self::heuristics_on()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_heuristics_on() {
        assert_eq!(CodegenOptions::default(), CodegenOptions::heuristics_on());
    }

    #[test]
    fn heuristics_off_is_exhaustive() {
        let o = CodegenOptions::heuristics_off();
        assert!(!o.prune_assignments);
        assert_eq!(o.clique_level_window, None);
        assert!(o.assignments_to_explore > 1 << 20);
    }

    #[test]
    fn fingerprint_ignores_parallelism_and_budget_knobs() {
        let base = CodegenOptions::default();
        let fp = base.planning_fingerprint();
        for tweaked in [
            base.clone().with_jobs(7),
            base.clone().with_jobs(0),
            base.clone().with_fuel(Some(10)),
            base.clone().with_deadline_ms(Some(5)),
            base.clone().with_exact_liveness(false),
            base.clone().with_analysis_bounds(false),
            base.clone().with_cancel(Some(CancelToken::new())),
        ] {
            assert_eq!(fp, tweaked.planning_fingerprint());
        }
    }

    #[test]
    fn fingerprint_tracks_planning_knobs() {
        let base = CodegenOptions::default();
        let fp = base.planning_fingerprint();
        let mut lookahead_off = base.clone();
        lookahead_off.lookahead = false;
        let mut wider_beam = base.clone();
        wider_beam.assignment_beam += 1;
        let mut no_peephole = base;
        no_peephole.peephole = false;
        for tweaked in [lookahead_off, wider_beam, no_peephole] {
            assert_ne!(fp, tweaked.planning_fingerprint());
        }
        assert_ne!(
            CodegenOptions::heuristics_on().planning_fingerprint(),
            CodegenOptions::heuristics_off().planning_fingerprint()
        );
    }
}
