//! Maximal groupings of parallel nodes (paper §IV-C).
//!
//! "The goal is to examine the nodes in a given assignment and merge them
//! into groups of nodes that can be executed in parallel on the target
//! processor. Each grouping corresponds to a VLIW instruction." Two nodes
//! can execute in parallel when they occupy different resources and no
//! directed dependency path connects them (Fig. 7's pairwise matrix);
//! [`gen_max_cliques`] is the recursive generator of Fig. 8 including its
//! `i < index` pruning condition; [`legalize`] enforces the ISDL
//! constraints by splitting illegal cliques (§IV-C.3).

use crate::budget::Budget;
use crate::covergraph::{CnKind, CoverGraph, Resource};
use aviv_ir::{BitMatrix, BitSet};
use aviv_isdl::{SlotPattern, Target};

/// The pairwise-parallelism matrix over a set of cover nodes.
///
/// Row `i` of `conflict` has bit `j` set when node `i` **cannot** execute
/// in parallel with node `j` (the paper's matrix stores 1 there); row `i`
/// of `compat` is its complement minus the diagonal bit. Both relations
/// are packed as [`BitMatrix`] rows so the clique generator works by
/// whole-row intersection instead of probing pairs one bit at a time.
#[derive(Debug, Clone)]
pub struct ParallelismMatrix {
    /// Matrix index → cover-graph node.
    pub ids: Vec<crate::covergraph::CnId>,
    conflict: BitMatrix,
    compat: BitMatrix,
}

impl ParallelismMatrix {
    /// Build the matrix for `nodes` of `graph`.
    ///
    /// Conflicts: a dependency path in either direction; two operations on
    /// the same unit; two transfers on the same capacity-1 bus; and — when
    /// `level_window` is set (§IV-C.2) — any pair whose levels from the
    /// top or from the bottom differ by more than the window.
    pub fn build(
        graph: &CoverGraph,
        target: &Target,
        nodes: &[crate::covergraph::CnId],
        level_window: Option<u32>,
    ) -> ParallelismMatrix {
        let n = nodes.len();
        let mut conflict = BitMatrix::new(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (nodes[i], nodes[j]);
                let mut c = graph.dependent(a, b);
                if !c {
                    c = match (graph.node(a).resource(), graph.node(b).resource()) {
                        (Resource::Unit(x), Resource::Unit(y)) => x == y,
                        (Resource::Bus(x), Resource::Bus(y)) => {
                            x == y && target.machine.bus(x).capacity == 1
                        }
                        _ => false,
                    };
                }
                if !c {
                    if let Some(w) = level_window {
                        let dt = graph.level_top(a).abs_diff(graph.level_top(b));
                        let db = graph.level_bottom(a).abs_diff(graph.level_bottom(b));
                        c = dt > w || db > w;
                    }
                }
                if c {
                    conflict.set(i, j);
                    conflict.set(j, i);
                }
            }
        }
        ParallelismMatrix::from_conflict_rows(nodes.to_vec(), conflict)
    }

    /// Finish a matrix from its packed conflict rows by precomputing the
    /// complementary compatibility rows (diagonal excluded).
    fn from_conflict_rows(
        ids: Vec<crate::covergraph::CnId>,
        conflict: BitMatrix,
    ) -> ParallelismMatrix {
        let n = ids.len();
        let mut compat = BitMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j && !conflict.contains(i, j) {
                    compat.set(i, j);
                }
            }
        }
        ParallelismMatrix {
            ids,
            conflict,
            compat,
        }
    }

    /// Build a matrix directly from conflict pairs over `n` abstract
    /// nodes (ids become `CnId(0..n)`). Exists for property tests that
    /// compare [`gen_max_cliques`] against a brute-force reference on
    /// arbitrary graphs.
    pub fn from_conflicts(n: usize, conflicts: &[(usize, usize)]) -> ParallelismMatrix {
        let mut conflict = BitMatrix::new(n, n);
        for &(i, j) in conflicts {
            if i != j && i < n && j < n {
                conflict.set(i, j);
                conflict.set(j, i);
            }
        }
        ParallelismMatrix::from_conflict_rows(
            (0..n as u32).map(crate::covergraph::CnId).collect(),
            conflict,
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the node set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether matrix rows `i` and `j` can execute in parallel.
    pub fn compatible(&self, i: usize, j: usize) -> bool {
        self.compat.contains(i, j)
    }

    /// The nodes compatible with `i`, as a freestanding set.
    fn compat_row(&self, i: usize) -> BitSet {
        self.compat.row_to_bitset(i)
    }

    /// Render as the paper's Fig. 7 0/1 matrix (0 = parallel).
    pub fn render(&self) -> String {
        let n = self.len();
        let mut out = String::new();
        out.push_str("      ");
        for j in 0..n {
            out.push_str(&format!("{:>5}", self.ids[j].to_string()));
        }
        out.push('\n');
        for i in 0..n {
            out.push_str(&format!("{:>5} ", self.ids[i].to_string()));
            for j in 0..n {
                let v = if i == j || !self.compatible(i, j) {
                    1
                } else {
                    0
                };
                out.push_str(&format!("{v:>5}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Generate all maximal cliques of the compatibility graph, as bitsets of
/// matrix indices — the recursive algorithm of the paper's Fig. 8.
pub fn gen_max_cliques(m: &ParallelismMatrix) -> Vec<BitSet> {
    gen_max_cliques_budgeted(m, &Budget::unlimited())
}

/// [`gen_max_cliques`] under a cooperative [`Budget`]: each recursive
/// step soft-charges one unit, and once the budget is exhausted the
/// recursion unwinds, returning whatever cliques were already complete.
/// A truncated clique set is still sound — [`legalize`] and the covering
/// loop only require that cliques be legal, not exhaustive — and the
/// caller's next hard charge surfaces the exhaustion.
pub fn gen_max_cliques_budgeted(m: &ParallelismMatrix, budget: &Budget) -> Vec<BitSet> {
    let n = m.len();
    let mut out: Vec<BitSet> = Vec::new();
    let mut seen: std::collections::HashSet<BitSet> = std::collections::HashSet::new();
    for start in 0..n {
        let mut clique = BitSet::new(n);
        clique.insert(start);
        gen_rec(
            m,
            clique,
            m.compat_row(start),
            start,
            &mut out,
            &mut seen,
            budget,
        );
    }
    out
}

/// One recursive step of Fig. 8's `gen_max_clique(clique, index)`.
///
/// `compat` is the running intersection of the compatibility rows of
/// every clique member — exactly the nodes that could still join — so
/// membership tests, preclusion tests, and candidate enumeration are all
/// whole-row bitset operations rather than per-pair probes.
fn gen_rec(
    m: &ParallelismMatrix,
    mut clique: BitSet,
    mut compat: BitSet,
    index: usize,
    out: &mut Vec<BitSet>,
    seen: &mut std::collections::HashSet<BitSet>,
    budget: &Budget,
) {
    budget.note(1);
    if budget.exhaustion().is_some() {
        return;
    }

    // First loop: add every node that can join and does not preclude any
    // other candidate. The pruning condition: if such a node has a smaller
    // id than `index`, this whole branch was already generated from that
    // node's seed — terminate.
    loop {
        let candidates = compat.clone();
        let mut grew = false;
        for i in candidates.iter() {
            if !compat.contains(i) {
                continue; // an earlier addition this round absorbed it
            }
            // Adding `i` precludes another live candidate iff its
            // conflict row overlaps the remaining candidate set (the
            // diagonal is never set, so `i` itself cannot match).
            let precludes = m.conflict.row_intersects(i, &compat);
            if !precludes {
                if i < index {
                    return; // pruning condition of Fig. 8
                }
                clique.insert(i);
                m.compat.intersect_row_into(i, &mut compat);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Second loop: spawn a recursive call per remaining compatible node.
    let mut spawned = false;
    for i in compat.iter() {
        let mut next = clique.clone();
        next.insert(i);
        let mut next_compat = compat.clone();
        m.compat.intersect_row_into(i, &mut next_compat);
        gen_rec(m, next, next_compat, index.max(i), out, seen, budget);
        spawned = true;
    }
    if !spawned && seen.insert(clique.clone()) {
        out.push(clique);
    }
}

/// Check every clique against the machine's constraints and bus
/// capacities; split violators into smaller legal cliques (§IV-C.3).
/// Returns the deduplicated legal clique set (every input node remains
/// covered by at least one clique).
pub fn legalize(
    cliques: Vec<BitSet>,
    m: &ParallelismMatrix,
    graph: &CoverGraph,
    target: &Target,
) -> Vec<BitSet> {
    let mut out: Vec<BitSet> = Vec::new();
    let mut seen: std::collections::HashSet<BitSet> = std::collections::HashSet::new();
    let mut work: Vec<BitSet> = cliques;
    while let Some(c) = work.pop() {
        if is_legal(&c, m, graph, target) {
            if seen.insert(c.clone()) {
                out.push(c);
            }
            continue;
        }
        // Greedy split: fill one legal sub-clique, push the remainder
        // back for further processing.
        let mut kept = BitSet::new(m.len());
        let mut rest = BitSet::new(m.len());
        for i in c.iter() {
            let mut probe = kept.clone();
            probe.insert(i);
            if is_legal(&probe, m, graph, target) {
                kept = probe;
            } else {
                rest.insert(i);
            }
        }
        debug_assert!(!kept.is_empty(), "single nodes are always legal");
        work.push(kept);
        if !rest.is_empty() {
            work.push(rest);
        }
    }
    // Stable order for determinism: `BitSet`'s `Ord` is lexicographic
    // over the element sequences, so this matches the old allocating
    // `sort_by_key(|c| c.iter().collect::<Vec<_>>())` without building a
    // key per comparison.
    out.sort_unstable();
    out
}

/// Whether a clique satisfies bus capacities and all ISDL constraints.
pub fn is_legal(
    clique: &BitSet,
    m: &ParallelismMatrix,
    graph: &CoverGraph,
    target: &Target,
) -> bool {
    // Bus capacity.
    let mut bus_use = vec![0u32; target.machine.buses().len()];
    for i in clique.iter() {
        if let Resource::Bus(b) = graph.node(m.ids[i]).resource() {
            bus_use[b.index()] += 1;
            if bus_use[b.index()] > target.machine.bus(b).capacity {
                return false;
            }
        }
    }
    // ISDL constraints.
    for con in target.machine.constraints() {
        let mut count = 0u32;
        for i in clique.iter() {
            let node = graph.node(m.ids[i]);
            let matched = con.members.iter().any(|pat| match *pat {
                SlotPattern::UnitOp { unit, op } => match &node.kind {
                    CnKind::Op { unit: u, op: o, .. } => {
                        *u == unit && op.is_none_or(|want| *o == want)
                    }
                    CnKind::Complex { unit: u, .. } => *u == unit && op.is_none(),
                    _ => false,
                },
                SlotPattern::BusUse { bus } => {
                    matches!(node.resource(), Resource::Bus(b) if b == bus)
                }
            });
            if matched {
                count += 1;
                if count > con.at_most {
                    return false;
                }
            }
        }
    }
    true
}

/// Reference implementation for property tests: brute-force maximal
/// cliques by subset enumeration (only usable for small `n`).
pub fn brute_force_max_cliques(m: &ParallelismMatrix) -> Vec<BitSet> {
    let n = m.len();
    assert!(n <= 20, "brute force is exponential");
    let mut cliques: Vec<BitSet> = Vec::new();
    for mask in 1u32..(1 << n) {
        let members: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let ok = members
            .iter()
            .enumerate()
            .all(|(k, &i)| members[k + 1..].iter().all(|&j| m.compatible(i, j)));
        if !ok {
            continue;
        }
        // Maximal: no outside node compatible with all members.
        let maximal =
            (0..n).all(|o| members.contains(&o) || members.iter().any(|&i| !m.compatible(i, o)));
        if maximal {
            let mut b = BitSet::new(n);
            for i in members {
                b.insert(i);
            }
            cliques.push(b);
        }
    }
    cliques.sort_unstable();
    cliques
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The allocation-free `BitSet` sort must order cliques exactly as
    /// the old per-comparison `Vec<usize>` key did.
    #[test]
    fn bitset_sort_matches_element_sequence_sort() {
        let m = ParallelismMatrix::from_conflicts(
            9,
            &[(0, 1), (2, 3), (4, 5), (1, 7), (3, 8), (0, 6), (5, 6)],
        );
        let mut by_ord = gen_max_cliques(&m);
        let mut by_key = by_ord.clone();
        by_ord.sort_unstable();
        by_key.sort_by_key(|c| c.iter().collect::<Vec<_>>());
        assert_eq!(by_ord, by_key);
        assert!(!by_ord.is_empty());
    }

    /// `legalize`'s output order is pinned: covering walks cliques in
    /// this order, so any change here would change generated code.
    #[test]
    fn packed_generation_matches_brute_force() {
        let cases: &[(usize, &[(usize, usize)])] = &[
            (1, &[]),
            (4, &[]),
            (5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
            (6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]),
            (7, &[(0, 3), (1, 4), (2, 5), (3, 6), (1, 2)]),
        ];
        for &(n, conflicts) in cases {
            let m = ParallelismMatrix::from_conflicts(n, conflicts);
            let mut generated = gen_max_cliques(&m);
            generated.sort_unstable();
            let brute = brute_force_max_cliques(&m);
            assert_eq!(generated, brute, "n={n} conflicts={conflicts:?}");
        }
    }
}
