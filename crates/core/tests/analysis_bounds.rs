//! Acceptance tests for the analysis-bounds pruning and the
//! machine×program feasibility analyzer.
//!
//! The pruning contract: with `CodegenOptions::analysis_bounds` on (the
//! default) emitted code is byte-identical to a run with it off — the
//! cutoff only abandons lookahead rollouts that provably cannot change
//! the covering decision — while the charged node expansions never
//! increase, and strictly decrease somewhere on the corpus.
//!
//! The analyzer contract: a "feasible" verdict matches actual
//! `compile_function` success and an M-error verdict matches failure,
//! for every bundled machine × corpus program and for random DAGs, at
//! every worker count.

use aviv::verify::analyze_program;
use aviv::{CodeGenerator, CodegenOptions};
use aviv_ir::randdag::{random_function, RandDagConfig};
use aviv_ir::{parse_function, Function, Op};
use aviv_isdl::{archs, Machine, Target};
use proptest::prelude::*;

fn machines() -> Vec<Machine> {
    vec![
        archs::example_arch(4),
        archs::arch_two(4),
        archs::dsp_arch(4),
        archs::chained_arch(4),
        archs::single_alu(4),
        archs::wide_arch(4),
        archs::quad_vliw(4),
        archs::accumulator_dsp(),
    ]
}

fn corpus() -> Vec<(&'static str, Function)> {
    let sources = [
        ("dot4", include_str!("../../../assets/dot4.av")),
        ("sum_loop", include_str!("../../../assets/sum_loop.av")),
    ];
    sources
        .into_iter()
        .map(|(name, src)| (name, parse_function(src).expect("corpus parses")))
        .collect()
}

fn total_expansions(report: &aviv::CompileReport) -> u64 {
    report.blocks.iter().map(|b| b.node_expansions).sum()
}

/// Byte-identity pin + bound admissibility + analyzer soundness over
/// every bundled machine × corpus program, and budget monotonicity with
/// at least one strict win.
#[test]
fn corpus_output_is_byte_identical_and_bounds_admissible() {
    let mut strict_win = false;
    for machine in machines() {
        let target = Target::new(machine.clone());
        for (prog, f) in corpus() {
            let pair = format!("{} x {}", machine.name, prog);
            let analysis = analyze_program(&f, &target);

            let on = CodeGenerator::new(machine.clone())
                .options(CodegenOptions::heuristics_on())
                .compile_function(&f);
            let off = CodeGenerator::new(machine.clone())
                .options(CodegenOptions::heuristics_on().with_analysis_bounds(false))
                .compile_function(&f);

            match (on, off) {
                (Ok((prog_on, rep_on)), Ok((prog_off, rep_off))) => {
                    assert!(
                        analysis.feasible(),
                        "{pair}: compiles but analyze flags an M-error: {:?}",
                        analysis.diagnostics
                    );
                    assert_eq!(
                        prog_on.render(&target),
                        prog_off.render(&target),
                        "{pair}: analysis_bounds changed the emitted code"
                    );
                    let (e_on, e_off) = (total_expansions(&rep_on), total_expansions(&rep_off));
                    assert!(
                        e_on <= e_off,
                        "{pair}: pruning increased expansions ({e_on} > {e_off})"
                    );
                    if e_on < e_off {
                        strict_win = true;
                    }
                    for (bi, b) in rep_on.blocks.iter().enumerate() {
                        assert!(
                            b.min_instructions_bound <= b.instructions,
                            "{pair} bb{bi}: instruction bound {} exceeds achieved {}",
                            b.min_instructions_bound,
                            b.instructions
                        );
                        assert!(
                            b.min_pressure_bound <= b.peak_pressure,
                            "{pair} bb{bi}: pressure bound {} exceeds achieved {}",
                            b.min_pressure_bound,
                            b.peak_pressure
                        );
                    }
                }
                (Err(_), Err(_)) => {
                    assert!(
                        !analysis.feasible(),
                        "{pair}: fails to compile but analyze reports feasible"
                    );
                }
                (on, off) => panic!(
                    "{pair}: analysis_bounds changed compile success: on={} off={}",
                    on.is_ok(),
                    off.is_ok()
                ),
            }
        }
    }
    assert!(
        strict_win,
        "pruning never strictly reduced node expansions on the corpus"
    );
}

/// The exhaustive preset explores the most tied covering decisions, so
/// the cutoff must show a strict node-expansion win there too (this is
/// the configuration the `+exact` bench rows snapshot).
#[test]
fn exhaustive_mode_prunes_strictly_on_dot4() {
    let f = parse_function(include_str!("../../../assets/dot4.av")).unwrap();
    let mut strict_win = false;
    for machine in [archs::example_arch(4), archs::dsp_arch(4)] {
        let target = Target::new(machine.clone());
        let (prog_on, rep_on) = CodeGenerator::new(machine.clone())
            .options(CodegenOptions::heuristics_off())
            .compile_function(&f)
            .expect("exhaustive compile succeeds");
        let (prog_off, rep_off) = CodeGenerator::new(machine.clone())
            .options(CodegenOptions::heuristics_off().with_analysis_bounds(false))
            .compile_function(&f)
            .expect("exhaustive compile succeeds");
        assert_eq!(
            prog_on.render(&target),
            prog_off.render(&target),
            "{}: analysis_bounds changed exhaustive-mode code",
            machine.name
        );
        let (e_on, e_off) = (total_expansions(&rep_on), total_expansions(&rep_off));
        assert!(e_on <= e_off, "{}: {e_on} > {e_off}", machine.name);
        if e_on < e_off {
            strict_win = true;
        }
    }
    assert!(
        strict_win,
        "exhaustive-mode pruning never strictly reduced expansions"
    );
}

fn soundness_cfg(n_ops: usize, with_div: bool) -> RandDagConfig {
    RandDagConfig {
        n_ops,
        n_inputs: 3,
        // With `with_div`, programs may demand a divider — several
        // bundled machines have none, exercising the M001 ⟺ failure
        // direction; without it, everything should compile everywhere.
        ops: if with_div {
            vec![Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Neg]
        } else {
            vec![Op::Add, Op::Sub, Op::Mul, Op::Add, Op::Mul, Op::Neg]
        },
        n_outputs: 2,
        locality: 0.5,
        const_prob: 0.2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    // Soundness: the analyzer's verdict is exactly the compiler's
    // outcome, for every bundled machine and worker count.
    #[test]
    fn analyzer_verdict_matches_compiler(
        seed in 0u64..10_000,
        n_ops in 3usize..12,
        n_blocks in 1usize..3,
        with_div in 0u64..2,
    ) {
        let f = random_function(&soundness_cfg(n_ops, with_div == 1), n_blocks, seed);
        for machine in machines() {
            let target = Target::new(machine.clone());
            let feasible = analyze_program(&f, &target).feasible();
            for jobs in [1usize, 4, 0] {
                let outcome = CodeGenerator::new(machine.clone())
                    .options(CodegenOptions::heuristics_on().with_jobs(jobs))
                    .compile_function(&f);
                prop_assert_eq!(
                    feasible,
                    outcome.is_ok(),
                    "machine {} seed {} jobs {}: analyze says {} but compile {:?}",
                    machine.name,
                    seed,
                    jobs,
                    if feasible { "feasible" } else { "infeasible" },
                    outcome.as_ref().map(|_| ()).map_err(ToString::to_string)
                );
                if let Ok((_, report)) = outcome {
                    for b in &report.blocks {
                        prop_assert!(b.min_instructions_bound <= b.instructions);
                        prop_assert!(b.min_pressure_bound <= b.peak_pressure);
                    }
                }
            }
        }
    }
}
