//! Plan-cache correctness: warm compiles must be byte-identical to cold
//! ones at every worker count, hit accounting must be exact, and a
//! single-block edit must invalidate exactly that block.
//!
//! The cache key is `(block content hash, target fingerprint, options
//! fingerprint)` — see `aviv::cache` — so the properties here are really
//! properties of the three fingerprints: stability across re-parses,
//! insensitivity to non-planning options, sensitivity to real changes.

use aviv::{CodeGenerator, CodegenOptions, PlanCache};
use aviv_ir::randdag::{random_function, RandDagConfig};
use aviv_ir::{parse_function, to_source, Function, Op};
use aviv_isdl::{parse_machine, Machine};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn assets_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../assets")
}

fn load_machine(name: &str) -> Machine {
    let src = fs::read_to_string(assets_dir().join(name)).unwrap();
    parse_machine(&src).unwrap()
}

fn load_function(name: &str) -> Function {
    let src = fs::read_to_string(assets_dir().join(name)).unwrap();
    parse_function(&src).unwrap()
}

fn rand_function(seed: u64, n_blocks: usize) -> Function {
    let cfg = RandDagConfig {
        n_ops: 8,
        n_inputs: 3,
        n_outputs: 2,
        ..Default::default()
    };
    random_function(&cfg, n_blocks, seed)
}

/// Compile with an explicit cache and worker count; returns the rendering
/// plus (hits, misses).
fn compile_cached(
    f: &Function,
    machine: Machine,
    cache: &Arc<PlanCache>,
    jobs: usize,
) -> (String, usize, usize) {
    let gen = CodeGenerator::new(machine)
        .options(CodegenOptions::default().with_jobs(jobs))
        .with_cache(Arc::clone(cache));
    let (program, report) = gen.compile_function(f).expect("compiles");
    (
        program.render(gen.target()),
        report.cache_hits,
        report.cache_misses,
    )
}

#[test]
fn warm_compile_is_all_hits_and_byte_identical_for_assets() {
    for (prog, mach) in [
        ("sum_loop.av", "fig3.isdl"),
        ("dot4.av", "fig3.isdl"),
        ("sum_loop.av", "archII.isdl"),
    ] {
        let f = load_function(prog);
        let n_blocks = f.blocks.len();
        let cache = Arc::new(PlanCache::new(1024));

        // Uncached reference.
        let gen = CodeGenerator::new(load_machine(mach));
        let (reference, report) = gen.compile_function(&f).expect("compiles");
        let reference = reference.render(gen.target());
        assert_eq!(report.cache_hits + report.cache_misses, 0);

        let (cold, hits, misses) = compile_cached(&f, load_machine(mach), &cache, 1);
        assert_eq!(cold, reference, "{prog}/{mach}: cold != uncached");
        assert_eq!((hits, misses), (0, n_blocks));

        // Warm, at several worker counts: all hits, identical bytes.
        for jobs in [1, 4, 0] {
            let (warm, hits, misses) = compile_cached(&f, load_machine(mach), &cache, jobs);
            assert_eq!(warm, reference, "{prog}/{mach}: warm jobs={jobs} differs");
            assert_eq!(
                (hits, misses),
                (n_blocks, 0),
                "{prog}/{mach}: warm jobs={jobs} not 100% hits"
            );
        }
    }
}

#[test]
fn cache_reports_surface_in_block_reports() {
    let f = load_function("sum_loop.av");
    let cache = Arc::new(PlanCache::new(64));
    let gen = CodeGenerator::new(load_machine("fig3.isdl")).with_cache(Arc::clone(&cache));
    let (_, cold) = gen.compile_function(&f).expect("compiles");
    assert!(cold.blocks.iter().all(|b| !b.cached));
    let (_, warm) = gen.compile_function(&f).expect("compiles");
    assert!(warm.blocks.iter().all(|b| b.cached));
    assert_eq!(warm.cache_hits, warm.blocks.len());
    let stats = cache.stats();
    assert_eq!(stats.hits as usize, warm.blocks.len());
    assert_eq!(stats.misses as usize, cold.blocks.len());
}

#[test]
fn same_source_reparsed_hits_the_cache() {
    // The serving path: clients send program text; every request is a
    // fresh parse. Hashes must not depend on parse identity.
    let src = fs::read_to_string(assets_dir().join("dot4.av")).unwrap();
    let cache = Arc::new(PlanCache::new(64));
    let f1 = parse_function(&src).unwrap();
    let f2 = parse_function(&src).unwrap();
    let (cold, _, _) = compile_cached(&f1, load_machine("fig3.isdl"), &cache, 1);
    let (warm, hits, misses) = compile_cached(&f2, load_machine("fig3.isdl"), &cache, 1);
    assert_eq!(cold, warm);
    assert_eq!(misses, 0);
    assert_eq!(hits, f2.blocks.len());
}

#[test]
fn different_targets_and_options_do_not_alias() {
    let f = load_function("sum_loop.av");
    let cache = Arc::new(PlanCache::new(256));
    let (_, _, m1) = compile_cached(&f, load_machine("fig3.isdl"), &cache, 1);
    assert_eq!(m1, f.blocks.len());
    // Different machine: all misses, not poisoned by fig3's plans.
    let (_, h2, m2) = compile_cached(&f, load_machine("archII.isdl"), &cache, 1);
    assert_eq!((h2, m2), (0, f.blocks.len()));
    // Different planning options: all misses again.
    let gen = CodeGenerator::new(load_machine("fig3.isdl"))
        .options(CodegenOptions::thorough())
        .with_cache(Arc::clone(&cache));
    let (_, report) = gen.compile_function(&f).expect("compiles");
    assert_eq!(report.cache_hits, 0);
}

#[test]
fn budget_and_parallelism_options_share_entries() {
    let f = load_function("sum_loop.av");
    let cache = Arc::new(PlanCache::new(256));
    let gen = CodeGenerator::new(load_machine("fig3.isdl")).with_cache(Arc::clone(&cache));
    let (cold_program, _) = gen.compile_function(&f).expect("compiles");
    let cold = cold_program.render(gen.target());

    // Generous budgets and different worker counts must serve from the
    // same entries with identical bytes: budgets decide *whether* a plan
    // degrades, and these don't.
    let warm_gen = CodeGenerator::new(load_machine("fig3.isdl"))
        .options(
            CodegenOptions::default()
                .with_jobs(4)
                .with_fuel(Some(u64::MAX / 4))
                .with_deadline_ms(Some(60_000)),
        )
        .with_cache(Arc::clone(&cache));
    let (warm_program, report) = warm_gen.compile_function(&f).expect("compiles");
    assert_eq!(report.cache_hits, f.blocks.len());
    assert_eq!(warm_program.render(warm_gen.target()), cold);
}

#[test]
fn degraded_plans_are_never_cached() {
    // Fuel tight enough to force blocks off the first rung: nothing
    // degraded may be inserted, so a rerun must replan those blocks.
    let cfg = RandDagConfig {
        n_ops: 8,
        n_inputs: 3,
        n_outputs: 2,
        ops: vec![Op::Add, Op::Sub, Op::Mul],
        ..Default::default()
    };
    let f = random_function(&cfg, 3, 1);
    let machine = aviv_isdl::archs::example_arch(3);
    let cache = Arc::new(PlanCache::new(256));
    let gen = CodeGenerator::new(machine)
        .options(CodegenOptions::default().with_fuel(Some(40)))
        .with_cache(Arc::clone(&cache));
    let (_, first) = gen.compile_function(&f).expect("compiles degraded");
    assert!(
        !first.downgrades.is_empty(),
        "fuel too generous for the test"
    );
    let (_, second) = gen.compile_function(&f).expect("compiles degraded");
    let incomplete = second.blocks.iter().filter(|b| !b.complete).count();
    let hit_incomplete = second.blocks.iter().filter(|b| !b.complete && b.cached);
    assert!(incomplete > 0);
    assert_eq!(hit_incomplete.count(), 0, "a degraded plan was cached");
}

#[test]
fn fault_injection_bypasses_the_cache() {
    let f = load_function("sum_loop.av");
    let cache = Arc::new(PlanCache::new(256));
    let faults = aviv::FaultConfig {
        seed: 7,
        rate: 1,
        stage: Some(aviv::Stage::Cover),
        kind: Some(aviv::FaultKind::Panic),
    };
    let gen = CodeGenerator::new(load_machine("fig3.isdl"))
        .options(CodegenOptions::default().with_faults(Some(faults)))
        .with_cache(Arc::clone(&cache));
    let (_, report) = gen.compile_function(&f).expect("faults degrade, not fail");
    assert_eq!(report.cache_hits + report.cache_misses, 0);
    assert!(cache.is_empty(), "fault-injected plans reached the cache");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Re-parse stability, generalized: hash keys come from parsing, so
    /// printing a random function and parsing it twice must hit.
    #[test]
    fn prop_reparsed_source_always_hits(seed in 0u64..5_000, n_blocks in 2usize..6) {
        let src = to_source(&rand_function(seed, n_blocks));
        let f1 = parse_function(&src).unwrap();
        let f2 = parse_function(&src).unwrap();
        let machine = aviv_isdl::archs::example_arch(4);
        let cache = Arc::new(PlanCache::new(1024));
        let gen1 = CodeGenerator::new(machine.clone()).with_cache(Arc::clone(&cache));
        let gen2 = CodeGenerator::new(machine).with_cache(Arc::clone(&cache));
        match (gen1.compile_function(&f1), gen2.compile_function(&f2)) {
            (Ok((p1, _)), Ok((p2, r2))) => {
                prop_assert_eq!(
                    p1.render(gen1.target()),
                    p2.render(gen2.target())
                );
                prop_assert_eq!(r2.cache_misses, 0, "re-parse missed the cache");
            }
            (Err(_), Err(_)) => {}
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "parse 1 ok = {}, parse 2 ok = {}", a.is_ok(), b.is_ok()
                )));
            }
        }
    }

    /// Editing one block's constant invalidates exactly that block: the
    /// recompile hits every other block and misses only the edited one.
    #[test]
    fn prop_single_block_edit_invalidates_exactly_that_block(
        seed in 0u64..5_000,
        n_blocks in 2usize..6,
    ) {
        let f = rand_function(seed, n_blocks);
        let machine = aviv_isdl::archs::example_arch(4);
        let cache = Arc::new(PlanCache::new(1024));
        let gen = CodeGenerator::new(machine).with_cache(Arc::clone(&cache));
        let Ok((_, cold)) = gen.compile_function(&f) else {
            return Ok(()); // machine can't implement this function
        };
        prop_assume!(cold.complete); // degraded plans are never cached

        // Pick a block with a Const node and retag it to a value that
        // cannot collide with an existing node (keeps the edit semantic).
        let victim = (seed as usize) % n_blocks;
        let mut edited = f.clone();
        let dag = &mut edited.blocks[victim].dag;
        let Some(id) = dag.iter().find(|(_, n)| n.op == Op::Const).map(|(id, _)| id) else {
            return Ok(()); // no constant to edit in this block
        };
        prop_assert!(dag.set_const_value(id, 987_654));

        let (_, warm) = gen.compile_function(&edited).expect("edited compiles");
        prop_assert_eq!(warm.cache_misses, 1, "exactly the edited block misses");
        prop_assert_eq!(warm.cache_hits, n_blocks - 1);
        let miss_block = warm.blocks.iter().position(|b| !b.cached);
        prop_assert_eq!(miss_block, Some(victim));
    }

    /// Warm serving is byte-identical across worker counts — the cache
    /// must not perturb the determinism contract.
    #[test]
    fn prop_warm_compiles_identical_at_any_jobs(seed in 0u64..5_000, n_blocks in 2usize..6) {
        let f = rand_function(seed, n_blocks);
        let machine = aviv_isdl::archs::example_arch(4);
        let cache = Arc::new(PlanCache::new(1024));
        let no_cache = CodeGenerator::new(machine.clone());
        let Ok((reference, _)) = no_cache.compile_function(&f) else {
            return Ok(());
        };
        let reference = reference.render(no_cache.target());
        for jobs in [1usize, 4, 0] {
            let (text, _, _) = compile_cached(&f, machine.clone(), &cache, jobs);
            prop_assert_eq!(&text, &reference, "jobs={} differs", jobs);
        }
    }
}
