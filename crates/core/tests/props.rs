//! Property-based tests of the covering engine's invariants
//! (see DESIGN.md §7).

use aviv::assign::explore;
use aviv::cliques::{brute_force_max_cliques, gen_max_cliques, ParallelismMatrix};
use aviv::cover::{cover, verify_schedule};
use aviv::covergraph::CoverGraph;
use aviv::regalloc::{allocate, verify_allocation};
use aviv::CodegenOptions;
use aviv_ir::randdag::{random_block, RandDagConfig};
use aviv_ir::Op;
use aviv_isdl::{archs, Target};
use aviv_splitdag::SplitNodeDag;
use proptest::prelude::*;

// Invariant 1: the Fig. 8 generator returns exactly the maximal cliques
// of any compatibility graph (checked against subset enumeration).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn clique_generator_matches_brute_force(
        n in 1usize..10,
        edges in prop::collection::vec((0usize..10, 0usize..10), 0..30),
    ) {
        let m = ParallelismMatrix::from_conflicts(n, &edges);
        let mut got: Vec<Vec<usize>> = gen_max_cliques(&m)
            .iter()
            .map(|c| c.iter().collect())
            .collect();
        got.sort();
        let mut want: Vec<Vec<usize>> = brute_force_max_cliques(&m)
            .iter()
            .map(|c| c.iter().collect())
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }
}

fn rand_cfg(n_ops: usize) -> RandDagConfig {
    RandDagConfig {
        n_ops,
        n_inputs: 3,
        ops: vec![Op::Add, Op::Sub, Op::Mul, Op::Add, Op::Mul],
        n_outputs: 2,
        locality: 0.5,
        const_prob: 0.0,
    }
}

// Invariants 2 and 3: every alive node covered exactly once in
// dependence order, resources legal, pressure within bounds; detailed
// coloring always succeeds afterwards — across random blocks, both
// paper architectures, and tight register budgets.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn covering_invariants_hold(
        seed in 0u64..10_000,
        n_ops in 3usize..14,
        arch_pick in 0usize..4,
    ) {
        let machine = match arch_pick {
            0 => archs::example_arch(4),
            1 => archs::example_arch(2),
            2 => archs::arch_two(4),
            _ => archs::arch_two(3),
        };
        let f = random_block(&rand_cfg(n_ops), seed);
        let dag = &f.blocks[0].dag;
        let target = Target::new(machine);
        let sndag = SplitNodeDag::build(dag, &target).unwrap();
        let options = CodegenOptions::heuristics_on();
        let res = explore(dag, &sndag, &target, &options);
        prop_assert!(!res.assignments.is_empty());
        for assignment in res.assignments.iter().take(2) {
            let mut graph = CoverGraph::build(dag, &sndag, &target, assignment);
            graph.verify(&target).map_err(|e| {
                TestCaseError::fail(format!("graph invalid: {e}"))
            })?;
            let mut syms = f.syms.clone();
            // Driver semantics: the concurrent engine may refuse extreme
            // register-pressure corners; the sequential fallback then
            // must succeed.
            let (graph, schedule) = match cover(&mut graph, &target, &mut syms, &options) {
                Ok(s) => (graph, s),
                Err(_) => {
                    let mut g = CoverGraph::build(dag, &sndag, &target, assignment);
                    let mut syms2 = f.syms.clone();
                    let s = aviv::cover::cover_sequential(&mut g, &target, &mut syms2)
                        .map_err(|e| TestCaseError::fail(format!("fallback: {e}")))?;
                    syms = syms2;
                    (g, s)
                }
            };
            let _ = &syms;
            verify_schedule(&graph, &target, &schedule)
                .map_err(TestCaseError::fail)?;
            let alloc = allocate(&graph, &target, &schedule)
                .map_err(|e| TestCaseError::fail(format!("alloc: {e}")))?;
            verify_allocation(&graph, &target, &schedule, &alloc)
                .map_err(TestCaseError::fail)?;
        }
    }
}

// Invariant 5: the Split-Node DAG's assignment space equals the product
// of per-node alternative counts, and no legal (op, unit) pair is
// dropped.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn sndag_alternatives_complete(seed in 0u64..10_000, n_ops in 2usize..12) {
        let f = random_block(&rand_cfg(n_ops), seed);
        let dag = &f.blocks[0].dag;
        let target = Target::new(archs::example_arch(4));
        let sndag = SplitNodeDag::build(dag, &target).unwrap();
        let mut product: u128 = 1;
        for (id, node) in dag.iter() {
            if node.op.is_leaf() || node.op.is_store() {
                continue;
            }
            let alts = sndag.alts(id);
            // Every capable unit appears exactly once among the simple
            // alternatives.
            let units = target.ops.units_for(node.op);
            let simple: Vec<_> = alts
                .iter()
                .filter(|a| matches!(a.kind, aviv_splitdag::AltKind::Simple(_)))
                .collect();
            prop_assert_eq!(simple.len(), units.len());
            product = product.saturating_mul(alts.len() as u128);
        }
        prop_assert_eq!(sndag.stats(dag).assignment_space, product);
    }
}

// Invariant 7 (structural half): the peephole pass never increases the
// instruction count and its output still verifies.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn peephole_never_hurts(seed in 0u64..10_000, n_ops in 3usize..12) {
        let f = random_block(&rand_cfg(n_ops), seed);
        let dag = &f.blocks[0].dag;
        let target = Target::new(archs::example_arch(2)); // force spills
        let sndag = SplitNodeDag::build(dag, &target).unwrap();
        let options = CodegenOptions::heuristics_on();
        let res = explore(dag, &sndag, &target, &options);
        let assignment = &res.assignments[0];
        let mut graph = CoverGraph::build(dag, &sndag, &target, assignment);
        let mut syms = f.syms.clone();
        let Ok(mut schedule) = cover(&mut graph, &target, &mut syms, &options) else {
            return Ok(()); // pressure-unsatisfiable assignment: skip
        };
        let before = schedule.len();
        let Ok(mut alloc) = allocate(&graph, &target, &schedule) else {
            return Err(TestCaseError::fail("allocation must succeed"));
        };
        aviv::peephole::optimize(&mut graph, &target, &mut schedule, &mut alloc);
        prop_assert!(schedule.len() <= before);
        verify_schedule(&graph, &target, &schedule).map_err(TestCaseError::fail)?;
        verify_allocation(&graph, &target, &schedule, &alloc)
            .map_err(TestCaseError::fail)?;
    }
}

// The assignment explorer's exhaustive mode really enumerates the whole
// space (product of alternative counts) when under the cap.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn exhaustive_enumeration_is_complete(seed in 0u64..10_000, n_ops in 2usize..7) {
        let f = random_block(&rand_cfg(n_ops), seed);
        let dag = &f.blocks[0].dag;
        let target = Target::new(archs::example_arch(4));
        let sndag = SplitNodeDag::build(dag, &target).unwrap();
        let space = sndag.stats(dag).assignment_space;
        prop_assume!(space <= 4096);
        let res = explore(dag, &sndag, &target, &CodegenOptions::heuristics_off());
        prop_assert_eq!(res.enumerated as u128, space);
        prop_assert!(!res.truncated);
    }
}

// The guaranteed-progress claim: the sequential fallback alone covers
// every assignment of every random block at every register budget the
// machine's operations permit (>= max arity).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn sequential_fallback_always_converges(
        seed in 0u64..100_000,
        n_ops in 2usize..16,
        regs in 2u32..5,
    ) {
        let f = random_block(&rand_cfg(n_ops), seed);
        let dag = &f.blocks[0].dag;
        let target = Target::new(archs::example_arch(regs));
        let sndag = SplitNodeDag::build(dag, &target).unwrap();
        let res = explore(dag, &sndag, &target, &CodegenOptions::heuristics_on());
        for assignment in res.assignments.iter().take(2) {
            let mut graph = CoverGraph::build(dag, &sndag, &target, assignment);
            let mut syms = f.syms.clone();
            let schedule = aviv::cover::cover_sequential(&mut graph, &target, &mut syms)
                .map_err(|e| TestCaseError::fail(format!("sequential: {e}")))?;
            verify_schedule(&graph, &target, &schedule).map_err(TestCaseError::fail)?;
            let alloc = allocate(&graph, &target, &schedule)
                .map_err(|e| TestCaseError::fail(format!("alloc: {e}")))?;
            verify_allocation(&graph, &target, &schedule, &alloc)
                .map_err(TestCaseError::fail)?;
        }
    }
}
