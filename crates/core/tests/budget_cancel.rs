//! Cancellation and deadline granularity of the cooperative [`Budget`].
//!
//! The serving layer's cancellation story rests on two properties of the
//! core compiler: a compile whose [`CancelToken`] is already fired (or
//! whose deadline has already passed) aborts *before* expanding any
//! covering state, and an abort never leaves a partial plan in the
//! shared cache. Both must hold at every `--jobs` setting, because the
//! per-block worker pool hands each block its own budget clone.

use aviv::{
    Budget, CancelToken, CodeGenerator, CodegenError, CodegenOptions, Exhaustion, PlanCache,
};
use aviv_ir::parse_function;
use aviv_isdl::parse_machine;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MACHINE: &str = "machine M {
    unit U1 { ops { add, sub, compl, cmpgt } regfile R1[4]; }
    unit U2 { ops { add, mul } regfile R2[4]; }
    memory DM;
    bus DB capacity 1 connects { R1, R2, DM };
}";

const PROGRAM: &str = "func f(a, b) {
    x = a * b + a;
    y = x - b;
    if (y > 0) goto big;
    return y;
big:
    t = x + 1;
    r = t * 2;
    return r;
}";

fn compile_with(options: CodegenOptions, cache: &Arc<PlanCache>) -> Result<(), CodegenError> {
    let machine = parse_machine(MACHINE).unwrap();
    let function = parse_function(PROGRAM).unwrap();
    let generator = CodeGenerator::new(machine)
        .options(options)
        .with_cache(Arc::clone(cache));
    generator.compile_function(&function).map(|_| ())
}

#[test]
fn precancelled_token_aborts_before_any_work_at_every_job_count() {
    for jobs in [1, 4, 0] {
        let token = CancelToken::new();
        token.cancel();
        let cache = Arc::new(PlanCache::new(64));
        let started = Instant::now();
        let err = compile_with(
            CodegenOptions::default()
                .with_jobs(jobs)
                .with_cancel(Some(token)),
            &cache,
        )
        .expect_err("pre-cancelled compile must not succeed");
        assert!(
            matches!(err, CodegenError::Cancelled),
            "jobs={jobs}: expected Cancelled, got {err}"
        );
        // Nothing may be cached by an aborted compile — a later compile
        // must start cold (no partial/poisoned entries).
        assert!(cache.is_empty(), "jobs={jobs}: abort left cache entries");
        assert_eq!(cache.stats().misses, 0, "jobs={jobs}: covering ran");
        // "Before any expansion" in wall-clock terms: the abort happens
        // at the entry check, not after a covering pass.
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "jobs={jobs}: abort took {:?}",
            started.elapsed()
        );
    }
}

#[test]
fn cancel_after_abort_leaves_cache_usable_for_clean_compile() {
    let cache = Arc::new(PlanCache::new(64));
    let token = CancelToken::new();
    token.cancel();
    let err = compile_with(CodegenOptions::default().with_cancel(Some(token)), &cache).unwrap_err();
    assert!(matches!(err, CodegenError::Cancelled));
    // A fresh compile against the same cache succeeds and caches its
    // blocks normally.
    compile_with(CodegenOptions::default(), &cache).expect("clean compile succeeds");
    assert!(!cache.is_empty());
    let stats = cache.stats();
    assert_eq!(stats.hits, 0);
    assert!(stats.misses > 0);
}

#[test]
fn already_expired_deadline_exhausts_on_first_sample_at_every_job_count() {
    for jobs in [1, 4, 0] {
        let cache = Arc::new(PlanCache::new(64));
        let result = compile_with(
            CodegenOptions::default()
                .with_jobs(jobs)
                .with_deadline_ms(Some(0)),
            &cache,
        );
        // An expired deadline is a *degradation*, not an abort: the
        // ladder walks down to SpillAll and still answers — but the
        // degraded plans must not be cached as if complete.
        result.unwrap_or_else(|e| panic!("jobs={jobs}: deadline degraded into error {e}"));
        assert!(
            cache.is_empty(),
            "jobs={jobs}: budget-degraded plans must not be cached"
        );
    }
}

#[test]
fn budget_reports_cancellation_within_one_clock_stride() {
    // The countdown starts at zero, so the very first `note()` samples
    // the token: a token fired before any work is observed immediately.
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel(Some(token));
    assert_eq!(budget.charge(1), Err(Exhaustion::Cancelled));
}

#[test]
fn cancellation_outranks_deadline_and_skips_the_ladder() {
    // When both the deadline has passed and the token has fired, the
    // compile must surface Cancelled (an abort), not walk the
    // degradation ladder to a SpillAll answer.
    let token = CancelToken::new();
    token.cancel();
    let cache = Arc::new(PlanCache::new(64));
    let err = compile_with(
        CodegenOptions::default()
            .with_deadline_ms(Some(0))
            .with_cancel(Some(token)),
        &cache,
    )
    .unwrap_err();
    assert!(matches!(err, CodegenError::Cancelled), "got {err}");
    assert!(cache.is_empty());
}

#[test]
fn unfired_token_is_free() {
    // A live-but-unfired token must not change behavior or output.
    let cache_plain = Arc::new(PlanCache::new(64));
    let cache_token = Arc::new(PlanCache::new(64));
    compile_with(CodegenOptions::default(), &cache_plain).unwrap();
    compile_with(
        CodegenOptions::default().with_cancel(Some(CancelToken::new())),
        &cache_token,
    )
    .unwrap();
    assert_eq!(
        cache_plain.stats().misses,
        cache_token.stats().misses,
        "token changed planning behavior"
    );
}
