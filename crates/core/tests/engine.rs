//! Focused tests of individual engine components: clique generation on
//! concrete graphs, constraint legalization, allocation behavior,
//! sequential fallback, emission text, and option toggles.

use aviv::assign::explore;
use aviv::cliques::{gen_max_cliques, is_legal, legalize, ParallelismMatrix};
use aviv::cover::{cover, cover_sequential, verify_schedule};
use aviv::covergraph::{CnKind, CoverGraph, Resource};
use aviv::regalloc::{allocate, verify_allocation};
use aviv::{CodeGenerator, CodegenOptions};
use aviv_ir::{parse_function, MemLayout, Op};
use aviv_isdl::{archs, MachineBuilder, SlotPattern, Target};
use aviv_splitdag::SplitNodeDag;

fn build_graph(
    src: &str,
    machine: aviv_isdl::Machine,
) -> (aviv_ir::Function, Target, SplitNodeDag, CoverGraph) {
    let f = parse_function(src).unwrap();
    let target = Target::new(machine);
    let sndag = SplitNodeDag::build(&f.blocks[0].dag, &target).unwrap();
    let res = explore(
        &f.blocks[0].dag,
        &sndag,
        &target,
        &CodegenOptions::heuristics_on(),
    );
    let graph = CoverGraph::build(&f.blocks[0].dag, &sndag, &target, &res.assignments[0]);
    (f, target, sndag, graph)
}

#[test]
fn matrix_conflicts_reflect_units_buses_and_paths() {
    let (_, target, _, graph) = build_graph(
        "func f(a, b, d, e) { out = (d * e) - (a + b); }",
        archs::example_arch(4),
    );
    let nodes = graph.alive();
    let m = ParallelismMatrix::build(&graph, &target, &nodes, None);
    for i in 0..m.len() {
        for j in 0..m.len() {
            if i == j {
                continue;
            }
            let (a, b) = (m.ids[i], m.ids[j]);
            let expect_conflict = graph.dependent(a, b)
                || match (graph.node(a).resource(), graph.node(b).resource()) {
                    (Resource::Unit(x), Resource::Unit(y)) => x == y,
                    (Resource::Bus(x), Resource::Bus(y)) => {
                        x == y && target.machine.bus(x).capacity == 1
                    }
                    _ => false,
                };
            assert_eq!(!m.compatible(i, j), expect_conflict, "{a} vs {b}");
        }
    }
}

#[test]
fn level_window_only_removes_pairs() {
    let (_, target, _, graph) = build_graph(
        "func f(a, b, c, d) { x = (a + b) * (c - d); y = x + a; }",
        archs::example_arch(4),
    );
    let nodes = graph.alive();
    let free = ParallelismMatrix::build(&graph, &target, &nodes, None);
    let windowed = ParallelismMatrix::build(&graph, &target, &nodes, Some(1));
    let mut free_pairs = 0;
    let mut windowed_pairs = 0;
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            if free.compatible(i, j) {
                free_pairs += 1;
            }
            if windowed.compatible(i, j) {
                windowed_pairs += 1;
                assert!(free.compatible(i, j), "window may only remove pairs");
            }
        }
    }
    assert!(windowed_pairs <= free_pairs);
    // And the windowed matrix generates no more cliques.
    assert!(gen_max_cliques(&windowed).len() <= gen_max_cliques(&free).len() * 2);
}

#[test]
fn legalize_enforces_isdl_constraints() {
    // A machine where U1 and U2 must not both multiply in one cycle.
    let mut b = MachineBuilder::new("C");
    let u1 = b.unit("U1", &[Op::Mul, Op::Add], 4);
    let u2 = b.unit("U2", &[Op::Mul, Op::Add], 4);
    b.bus("DB", &[u1, u2], true, 2);
    b.constraint(
        1,
        vec![
            SlotPattern::UnitOp {
                unit: u1,
                op: Some(Op::Mul),
            },
            SlotPattern::UnitOp {
                unit: u2,
                op: Some(Op::Mul),
            },
        ],
    );
    let machine = b.build().unwrap();
    let (_, target, _, graph) = build_graph(
        "func f(a, b, c, d) { x = a * b; y = c * d; out = x + y; }",
        machine,
    );
    let nodes = graph.alive();
    let m = ParallelismMatrix::build(&graph, &target, &nodes, None);
    let raw = gen_max_cliques(&m);
    let legal = legalize(raw, &m, &graph, &target);
    for c in &legal {
        assert!(is_legal(c, &m, &graph, &target));
        // Count muls per clique across units.
        let muls = c
            .iter()
            .filter(|&i| matches!(graph.node(m.ids[i]).kind, CnKind::Op { op: Op::Mul, .. }))
            .count();
        assert!(muls <= 1, "constraint allows at most one mul per cycle");
    }
    // Coverage survives legalization.
    let mut covered = vec![false; nodes.len()];
    for c in &legal {
        for i in c.iter() {
            covered[i] = true;
        }
    }
    assert!(covered.iter().all(|&c| c));

    // The constraint shows in final schedules too.
    let f = parse_function("func f(a, b, c, d) { x = a * b; y = c * d; out = x + y; }").unwrap();
    let gen = CodeGenerator::with_target(target.clone());
    let mut syms = f.syms.clone();
    let mut layout = MemLayout::for_function(&f);
    let r = gen
        .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
        .unwrap();
    for inst in &r.instructions {
        let muls = inst
            .slots
            .iter()
            .flatten()
            .filter(|s| matches!(s.opcode, aviv::SlotOpcode::Basic(Op::Mul)))
            .count();
        assert!(muls <= 1);
    }
}

#[test]
fn allocation_reuses_registers() {
    // A long chain: values die quickly, so the allocator should cycle
    // through very few registers even though many values exist.
    let src = "func f(a) {
        x1 = a + 1; x2 = x1 + 1; x3 = x2 + 1; x4 = x3 + 1;
        x5 = x4 + 1; x6 = x5 + 1; out = x6 + 1;
    }";
    let (f, target, _, mut graph) = build_graph(src, archs::example_arch(4));
    let mut syms = f.syms.clone();
    let schedule = cover(
        &mut graph,
        &target,
        &mut syms,
        &CodegenOptions::heuristics_on(),
    )
    .unwrap();
    let alloc = allocate(&graph, &target, &schedule).unwrap();
    verify_allocation(&graph, &target, &schedule, &alloc).unwrap();
    // Distinct registers used in the busiest bank stays small (chain
    // liveness is 1-2).
    let mut used: std::collections::HashSet<aviv::Reg> = Default::default();
    for id in graph.alive() {
        if let Some(r) = alloc.get(id) {
            used.insert(r);
        }
    }
    assert!(used.len() <= 6, "used {} registers for a chain", used.len());
}

#[test]
fn sequential_fallback_matches_interpreter_costs() {
    let src = "func f(a, b, c) { t = a + b; u = t * c; v = u - t; out = v; }";
    let (f, target, sndag, _) = build_graph(src, archs::example_arch(4));
    let res = explore(
        &f.blocks[0].dag,
        &sndag,
        &target,
        &CodegenOptions::heuristics_on(),
    );
    // Sequential covering is valid but longer than concurrent covering.
    let mut g1 = CoverGraph::build(&f.blocks[0].dag, &sndag, &target, &res.assignments[0]);
    let mut syms1 = f.syms.clone();
    let concurrent = cover(
        &mut g1,
        &target,
        &mut syms1,
        &CodegenOptions::heuristics_on(),
    )
    .unwrap();
    let mut g2 = CoverGraph::build(&f.blocks[0].dag, &sndag, &target, &res.assignments[0]);
    let mut syms2 = f.syms.clone();
    let sequential = cover_sequential(&mut g2, &target, &mut syms2).unwrap();
    verify_schedule(&g2, &target, &sequential).unwrap();
    assert!(
        concurrent.len() <= sequential.len(),
        "concurrent {} > sequential {}",
        concurrent.len(),
        sequential.len()
    );
    // One node per step in sequential mode.
    for step in &sequential.steps {
        assert_eq!(step.len(), 1);
    }
}

#[test]
fn options_toggles_change_work_not_correctness() {
    let src = "func f(a, b, c, d) { x = (a + b) * (c + d); y = x - a; out = y; }";
    let f = parse_function(src).unwrap();
    for (label, opts) in [
        ("no_lookahead", {
            let mut o = CodegenOptions::heuristics_on();
            o.lookahead = false;
            o
        }),
        ("no_peephole", {
            let mut o = CodegenOptions::heuristics_on();
            o.peephole = false;
            o
        }),
        ("no_window", {
            let mut o = CodegenOptions::heuristics_on();
            o.clique_level_window = None;
            o
        }),
        ("pressure_aware", {
            let mut o = CodegenOptions::heuristics_on();
            o.pressure_aware_assignment = true;
            o
        }),
    ] {
        let gen = CodeGenerator::new(archs::example_arch(4)).options(opts);
        let mut syms = f.syms.clone();
        let mut layout = MemLayout::for_function(&f);
        let r = gen
            .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        verify_schedule(&r.graph, gen.target(), &r.schedule)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn emitted_assembly_mentions_machine_resources() {
    let f = parse_function("func f(a, b) { x = a * b + 1; return x; }").unwrap();
    let gen = CodeGenerator::new(archs::example_arch(4));
    let (program, _) = gen.compile_function(&f).unwrap();
    let asm = program.render(gen.target());
    assert!(asm.contains("DB:"), "bus transfers shown\n{asm}");
    assert!(asm.contains("ret"), "return shown\n{asm}");
    assert!(
        asm.contains(";a") || asm.contains("[0]"),
        "loads annotated\n{asm}"
    );
}

#[test]
fn schedule_step_of_inverts_steps() {
    let (f, target, _, mut graph) = build_graph(
        "func f(a, b) { x = a + b; y = x * 2; }",
        archs::example_arch(4),
    );
    let mut syms = f.syms.clone();
    let schedule = cover(
        &mut graph,
        &target,
        &mut syms,
        &CodegenOptions::heuristics_on(),
    )
    .unwrap();
    let step_of = schedule.step_of(graph.len());
    for (t, step) in schedule.steps.iter().enumerate() {
        for &n in step {
            assert_eq!(step_of[n.index()], Some(t));
        }
    }
}
