//! Parallel compilation must be invisible in the output: for any worker
//! count, `compile_function` has to emit a program byte-identical to the
//! sequential (`jobs = 1`) run. Blocks are planned against an immutable
//! symbol-table snapshot and merged in block order, so this holds by
//! construction — these tests pin it against every shipped asset and
//! against random multi-block programs.

use aviv::{CodeGenerator, CodegenOptions};
use aviv_ir::randdag::{random_function, RandDagConfig};
use aviv_ir::{parse_function, Function};
use aviv_isdl::{parse_machine, Machine};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};

fn assets_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../assets")
}

fn load_machine(name: &str) -> Machine {
    let src = fs::read_to_string(assets_dir().join(name)).unwrap();
    parse_machine(&src).unwrap()
}

fn load_function(name: &str) -> Function {
    let src = fs::read_to_string(assets_dir().join(name)).unwrap();
    parse_function(&src).unwrap()
}

/// Compile `f` with the given worker count; everything else defaults.
///
/// Invariant checking is forced on (even in release builds) so every
/// determinism run also audits the pipeline stage contracts, and the final
/// program is re-checked explicitly so a regression reports the stage
/// diagnostics rather than just a byte diff.
fn compile_with_jobs(
    f: &Function,
    machine: Machine,
    jobs: usize,
) -> Result<(aviv::VliwProgram, String), aviv::CodegenError> {
    let gen = CodeGenerator::new(machine)
        .options(CodegenOptions::default().with_jobs(jobs).with_verify(true));
    let (program, _) = gen.compile_function(f)?;
    let diags = aviv::verify_program(gen.target(), &program);
    assert!(diags.is_empty(), "invariant diagnostics: {diags:?}");
    let rendered = program.render(gen.target());
    Ok((program, rendered))
}

#[test]
fn sum_loop_on_fig3_is_identical_across_worker_counts() {
    let f = load_function("sum_loop.av");
    let (seq, seq_text) = compile_with_jobs(&f, load_machine("fig3.isdl"), 1).unwrap();
    let (par, par_text) = compile_with_jobs(&f, load_machine("fig3.isdl"), 4).unwrap();
    assert_eq!(seq, par, "VliwProgram differs between jobs=1 and jobs=4");
    assert_eq!(seq_text, par_text, "rendered assembly differs");
    // jobs=0 (one worker per core) must agree too.
    let (auto, _) = compile_with_jobs(&f, load_machine("fig3.isdl"), 0).unwrap();
    assert_eq!(seq, auto, "VliwProgram differs between jobs=1 and jobs=0");
}

#[test]
fn every_asset_pair_is_identical_across_worker_counts() {
    let dir = assets_dir();
    let mut programs = Vec::new();
    let mut machines = Vec::new();
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("av") => programs.push(path),
            Some("isdl") => machines.push(path),
            _ => {}
        }
    }
    programs.sort();
    machines.sort();
    assert!(!programs.is_empty() && !machines.is_empty());

    for p in &programs {
        let f = parse_function(&fs::read_to_string(p).unwrap()).unwrap();
        for m in &machines {
            let machine = parse_machine(&fs::read_to_string(m).unwrap()).unwrap();
            let seq = compile_with_jobs(&f, machine.clone(), 1);
            let par = compile_with_jobs(&f, machine, 3);
            let label = format!("{:?} on {:?}", p.file_name(), m.file_name());
            match (seq, par) {
                (Ok((sp, st)), Ok((pp, pt))) => {
                    assert_eq!(sp, pp, "{label}: program differs");
                    assert_eq!(st, pt, "{label}: rendering differs");
                }
                // Unsupported combinations must fail either way.
                (Err(_), Err(_)) => {}
                (s, p) => panic!(
                    "{label}: jobs=1 and jobs=3 disagree about success: \
                     seq ok = {}, par ok = {}",
                    s.is_ok(),
                    p.is_ok()
                ),
            }
        }
    }
}

/// Compile a batch of functions with the given worker count and render
/// every result (programs and reports) into one comparable transcript.
fn batch_transcript(
    functions: &[Function],
    machine: Machine,
    jobs: usize,
    fuel: Option<u64>,
) -> String {
    let gen = CodeGenerator::new(machine).options(
        CodegenOptions::default()
            .with_jobs(jobs)
            .with_fuel(fuel)
            .with_verify(true),
    );
    let mut out = String::new();
    for (i, result) in gen.compile_batch(functions).into_iter().enumerate() {
        match result {
            Ok((program, report)) => {
                out.push_str(&format!("=== {i} ok ===\n"));
                out.push_str(&program.render(gen.target()));
                for d in &report.downgrades {
                    out.push_str(&format!("downgrade: {d}\n"));
                }
                out.push_str(&format!("complete: {}\n", report.complete));
            }
            Err(e) => out.push_str(&format!("=== {i} err ===\n{e}\n")),
        }
    }
    out
}

/// Program-level parallelism must be as invisible as block-level: the
/// whole batch transcript — assembly bytes, downgrade reports, error
/// outcomes — is byte-identical at jobs 1, 4, and 0.
#[test]
fn batch_compile_is_identical_across_worker_counts() {
    let dir = assets_dir();
    let mut functions = Vec::new();
    let mut paths: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("av"))
        .collect();
    paths.sort();
    for p in &paths {
        functions.push(parse_function(&fs::read_to_string(p).unwrap()).unwrap());
    }
    assert!(functions.len() >= 2, "need a real batch");

    for machine in ["fig3.isdl", "archII.isdl", "dsp_mac.isdl"] {
        let seq = batch_transcript(&functions, load_machine(machine), 1, None);
        for jobs in [4, 0] {
            let par = batch_transcript(&functions, load_machine(machine), jobs, None);
            assert_eq!(seq, par, "{machine}: batch differs at jobs={jobs}");
        }
    }
}

/// Budgeted batches downgrade identically at every worker count: the
/// degradation ladder is per-block-deterministic, so the reported
/// downgrades must not depend on scheduling.
#[test]
fn batch_downgrades_are_identical_across_worker_counts() {
    let functions: Vec<Function> = (0..6)
        .map(|seed| {
            let cfg = RandDagConfig {
                n_ops: 8,
                n_inputs: 3,
                n_outputs: 2,
                ops: vec![aviv_ir::Op::Add, aviv_ir::Op::Sub, aviv_ir::Op::Mul],
                ..Default::default()
            };
            random_function(&cfg, 3, seed)
        })
        .collect();
    let machine = aviv_isdl::archs::example_arch(3);
    // Tight fuel forces ladder steps; the transcript embeds them.
    let seq = batch_transcript(&functions, machine.clone(), 1, Some(40));
    assert!(
        seq.contains("downgrade:"),
        "fuel too generous for the test:\n{seq}"
    );
    for jobs in [4, 0] {
        let par = batch_transcript(&functions, machine.clone(), jobs, Some(40));
        assert_eq!(seq, par, "budgeted batch differs at jobs={jobs}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_multiblock_programs_compile_identically(
        seed in 0u64..10_000,
        n_blocks in 2usize..9,
        n_ops in 3usize..10,
        regs in 2u32..5,
    ) {
        let cfg = RandDagConfig {
            n_ops,
            n_inputs: 3,
            n_outputs: 2,
            ..Default::default()
        };
        let f = random_function(&cfg, n_blocks, seed);
        let machine = aviv_isdl::archs::example_arch(regs);
        let seq = compile_with_jobs(&f, machine.clone(), 1);
        let par = compile_with_jobs(&f, machine, 4);
        match (seq, par) {
            (Ok((sp, st)), Ok((pp, pt))) => {
                prop_assert_eq!(&sp, &pp);
                prop_assert_eq!(st, pt);
            }
            (Err(_), Err(_)) => {}
            (s, p) => {
                return Err(TestCaseError::fail(format!(
                    "jobs=1 ok = {}, jobs=4 ok = {}",
                    s.is_ok(),
                    p.is_ok()
                )));
            }
        }
    }
}
