//! End-to-end pipeline tests: parse → Split-Node DAG → assignment
//! exploration → covering → allocation → peephole → emission, verified
//! with the structural oracles at every stage.

use aviv::cover::verify_schedule;
use aviv::regalloc::verify_allocation;
use aviv::{CodeGenerator, CodegenOptions};
use aviv_ir::{parse_function, MemLayout};
use aviv_isdl::archs;

fn compile(src: &str, machine: aviv_isdl::Machine, options: CodegenOptions) -> aviv::BlockResult {
    let f = parse_function(src).unwrap();
    let gen = CodeGenerator::new(machine).options(options);
    let mut syms = f.syms.clone();
    let mut layout = MemLayout::for_function(&f);
    let result = gen
        .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
        .unwrap();
    verify_schedule(&result.graph, gen.target(), &result.schedule).unwrap();
    verify_allocation(&result.graph, gen.target(), &result.schedule, &result.alloc).unwrap();
    result
}

#[test]
fn single_op_block() {
    let r = compile(
        "func f(a, b) { x = a + b; }",
        archs::example_arch(4),
        CodegenOptions::heuristics_on(),
    );
    // Loads of a and b (bus, capacity 1 → 2 instructions), the add, the
    // store: at least 4 instructions on the Fig. 3 machine.
    assert!(r.report.instructions >= 4, "{:?}", r.report);
    assert_eq!(r.report.spills, 0);
}

#[test]
fn fig2_block_compiles_on_both_archs() {
    let src = "func f(a, b, d, e) { out = (d * e) - (a + b); }";
    let r1 = compile(src, archs::example_arch(4), CodegenOptions::heuristics_on());
    let r2 = compile(src, archs::arch_two(4), CodegenOptions::heuristics_on());
    assert!(r1.report.instructions > 0);
    assert!(r2.report.instructions > 0);
    // The reduced architecture has a smaller Split-Node DAG.
    assert!(r2.report.sndag_nodes < r1.report.sndag_nodes);
}

#[test]
fn heuristics_off_is_no_worse() {
    let src = "func f(a, b, c) { t = a + b; u = t * c; v = u - t; out = v; }";
    let on = compile(src, archs::example_arch(4), CodegenOptions::heuristics_on());
    let off = compile(
        src,
        archs::example_arch(4),
        CodegenOptions::heuristics_off(),
    );
    assert!(
        off.report.instructions <= on.report.instructions,
        "off={} on={}",
        off.report.instructions,
        on.report.instructions
    );
}

#[test]
fn two_registers_force_spills_on_wide_block() {
    // Many simultaneously-live values with only 2 registers per file.
    let src = "func f(a, b, c, d, e, g) {
        t1 = a + b;
        t2 = c + d;
        t3 = e + g;
        t4 = t1 * t2;
        t5 = t4 - t3;
        out = t5 + t1;
    }";
    let small = compile(src, archs::example_arch(2), CodegenOptions::heuristics_on());
    let big = compile(src, archs::example_arch(4), CodegenOptions::heuristics_on());
    assert!(
        small.report.instructions >= big.report.instructions,
        "fewer registers cannot make code smaller"
    );
    assert_eq!(big.report.spills, 0, "4 registers/file suffice here");
}

#[test]
fn mac_complex_instruction_is_used() {
    let r = compile(
        "func f(a, b, c) { y = a * b + c; }",
        archs::dsp_arch(4),
        CodegenOptions::heuristics_on(),
    );
    let uses_mac = r.instructions.iter().any(|inst| {
        inst.slots
            .iter()
            .flatten()
            .any(|s| matches!(s.opcode, aviv::SlotOpcode::Complex(_)))
    });
    assert!(uses_mac, "MAC should cover mul+add");
}

#[test]
fn chained_arch_multi_hop_transfers() {
    // U1's bank reaches memory only through U2's bank.
    let r = compile(
        "func f(a, b) { x = ~(a - b); }",
        archs::chained_arch(4),
        CodegenOptions::heuristics_on(),
    );
    assert!(r.report.instructions > 0);
}

#[test]
fn single_alu_sequentializes() {
    let r = compile(
        "func f(a, b, c) { x = (a + b) * c; }",
        archs::single_alu(4),
        CodegenOptions::heuristics_on(),
    );
    // One unit, one bus: 3 loads + 1 store on the bus (capacity 1) and
    // 2 unit ops, but a load can pair with an independent op — the
    // optimum is 5 instructions.
    assert!(r.report.instructions >= 5, "{}", r.report.instructions);
}

#[test]
fn whole_function_with_control_flow() {
    let src = "func abs_diff(a, b) {
        d = a - b;
        if (d >= 0) goto done;
        d = 0 - d;
    done:
        return d;
    }";
    let f = parse_function(src).unwrap();
    let gen = CodeGenerator::new(archs::example_arch(4));
    let (program, report) = gen.compile_function(&f).unwrap();
    assert_eq!(report.blocks.len(), 3);
    assert_eq!(program.block_starts.len(), 3);
    assert!(program
        .instructions
        .iter()
        .any(|i| matches!(i.control, Some(aviv::ControlOp::BranchNz { .. }))));
    assert!(program
        .instructions
        .iter()
        .any(|i| matches!(i.control, Some(aviv::ControlOp::Return(_)))));
    // Render produces text mentioning every unit used.
    let asm = program.render(gen.target());
    assert!(asm.contains("bb0:") && asm.contains("CTRL"));
}

#[test]
fn immediates_never_load() {
    let r = compile(
        "func f(a) { x = a + 1; y = x * 2; }",
        archs::example_arch(4),
        CodegenOptions::heuristics_on(),
    );
    // Constants appear as immediates, not loads.
    let loads: usize = r
        .instructions
        .iter()
        .flat_map(|i| &i.xfers)
        .filter(|x| matches!(x.kind, aviv::TransferKind::LoadVar { .. }))
        .count();
    assert_eq!(loads, 1, "only `a` is loaded");
}
