//! Source printer: [`Function`] → front-end-language text.
//!
//! The inverse of [`crate::parse_function`], up to semantics: the printed
//! program parses back to a function that computes the same values (the
//! structure may differ — printing is three-address, and the parser
//! re-derives live-outs and write-backs). Useful for inspecting the
//! output of the optimization passes and for persisting generated
//! workloads.

use crate::dag::NodeId;
use crate::op::Op;
use crate::program::{Function, Terminator};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Render `f` as parseable source text.
///
/// ```
/// use aviv_ir::{parse_function, run_function, to_source};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = parse_function("func f(a) { x = a * 3 + 1; return x; }")?;
/// let printed = to_source(&f);
/// let reparsed = parse_function(&printed)?;
/// assert_eq!(run_function(&f, &[5])?.return_value,
///            run_function(&reparsed, &[5])?.return_value);
/// # Ok(())
/// # }
/// ```
pub fn to_source(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<&str> = f.params.iter().map(|&p| f.syms.name(p)).collect();
    let _ = writeln!(out, "func {}({}) {{", sanitize(&f.name), params.join(", "));

    // Temp names must not collide with existing symbols.
    let taken: HashSet<&str> = f.syms.iter().map(|(_, n)| n).collect();
    let temp_name = |block: usize, node: NodeId| {
        let mut name = format!("t{}_{}", block, node.0);
        while taken.contains(name.as_str()) {
            name.push('x');
        }
        name
    };

    // Entry first; the parser treats the first block as the entry, so if
    // the entry is not block 0 we add a leading goto.
    if f.entry.index() != 0 {
        let _ = writeln!(out, "    goto bb{};", f.entry.index());
    }

    for (bi, block) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "bb{bi}:");
        let dag = &block.dag;
        // Every value node gets a temp; leaves inline.
        let operand = |n: NodeId| -> String {
            let node = dag.node(n);
            match node.op {
                Op::Const => {
                    let v = node.imm.unwrap();
                    if v < 0 {
                        format!("(0 - {})", v.unsigned_abs())
                    } else {
                        v.to_string()
                    }
                }
                Op::Input => f.syms.name(node.sym.unwrap()).to_string(),
                _ => temp_name(bi, n),
            }
        };
        for (id, node) in dag.iter() {
            match node.op {
                Op::Const | Op::Input => {}
                Op::StoreVar => {
                    // Skip write-backs of compiler-internal live-out
                    // markers; the parser recreates them.
                    let name = f.syms.name(node.sym.unwrap());
                    if !name.starts_with("__") {
                        let _ = writeln!(out, "    {} = {};", name, operand(node.args[0]));
                    }
                }
                Op::Store => {
                    let _ = writeln!(
                        out,
                        "    mem[{}] = {};",
                        operand(node.args[0]),
                        operand(node.args[1])
                    );
                }
                Op::Load => {
                    let _ = writeln!(
                        out,
                        "    {} = mem[{}];",
                        temp_name(bi, id),
                        operand(node.args[0])
                    );
                }
                op => {
                    let expr = render_op(
                        op,
                        &node.args.iter().map(|&a| operand(a)).collect::<Vec<_>>(),
                    );
                    let _ = writeln!(out, "    {} = {};", temp_name(bi, id), expr);
                }
            }
        }
        match &block.term {
            Terminator::Jump(t) => {
                let _ = writeln!(out, "    goto bb{};", t.index());
            }
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => {
                let _ = writeln!(
                    out,
                    "    if ({}) goto bb{};",
                    operand(*cond),
                    if_true.index()
                );
                let _ = writeln!(out, "    goto bb{};", if_false.index());
            }
            Terminator::Return(Some(v)) => {
                let _ = writeln!(out, "    return {};", operand(*v));
            }
            Terminator::Return(None) => {
                let _ = writeln!(out, "    return;");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn render_op(op: Op, args: &[String]) -> String {
    use Op::*;
    match op {
        Add => format!("{} + {}", args[0], args[1]),
        Sub => format!("{} - {}", args[0], args[1]),
        Mul => format!("{} * {}", args[0], args[1]),
        Div => format!("{} / {}", args[0], args[1]),
        And => format!("{} & {}", args[0], args[1]),
        Or => format!("{} | {}", args[0], args[1]),
        Xor => format!("{} ^ {}", args[0], args[1]),
        Shl => format!("{} << {}", args[0], args[1]),
        Shr => format!("{} >> {}", args[0], args[1]),
        Neg => format!("0 - {}", args[0]),
        Compl => format!("~{}", args[0]),
        Abs => format!("abs({})", args[0]),
        Min => format!("min({}, {})", args[0], args[1]),
        Max => format!("max({}, {})", args[0], args[1]),
        Mac => format!("{} * {} + {}", args[0], args[1], args[2]),
        CmpEq => format!("{} == {}", args[0], args[1]),
        CmpNe => format!("{} != {}", args[0], args[1]),
        CmpLt => format!("{} < {}", args[0], args[1]),
        CmpLe => format!("{} <= {}", args[0], args[1]),
        CmpGt => format!("{} > {}", args[0], args[1]),
        CmpGe => format!("{} >= {}", args[0], args[1]),
        Const | Input | Load | Store | StoreVar => unreachable!("handled by caller"),
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'f');
    }
    s
}

/// Render one block's DAG as a standalone single-block function (handy in
/// tests and debugging).
pub fn block_to_source(f: &Function, block: crate::program::BlockId) -> String {
    let single = Function {
        name: format!("{}_bb{}", f.name, block.index()),
        params: f.params.clone(),
        blocks: vec![crate::program::BasicBlock {
            label: None,
            dag: f.blocks[block.index()].dag.clone(),
            term: Terminator::Return(None),
        }],
        entry: crate::program::BlockId(0),
        syms: f.syms.clone(),
    };
    to_source(&single)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::parser::parse_function;
    use crate::program::MemLayout;

    /// Parse → print → parse: named variables end with the same values.
    fn round_trip(src: &str, args: &[i64]) {
        let f1 = parse_function(src).unwrap();
        let printed = to_source(&f1);
        let f2 = parse_function(&printed)
            .unwrap_or_else(|e| panic!("printed source must parse: {e}\n{printed}"));

        let mut i1 = Interpreter::with_layout(&f1, MemLayout::for_function(&f1));
        i1.args(args);
        let r1 = i1.run().unwrap();
        let mut i2 = Interpreter::with_layout(&f2, MemLayout::for_function(&f2));
        i2.args(args);
        let r2 = i2.run().unwrap();

        assert_eq!(r1.return_value, r2.return_value, "{printed}");
        for (_, name) in f1.syms.iter() {
            if name.starts_with("__") {
                continue;
            }
            assert_eq!(
                i1.read_var(name),
                i2.read_var(name),
                "variable {name}\n{printed}"
            );
        }
    }

    #[test]
    fn straight_line_round_trips() {
        round_trip(
            "func f(a, b, c) { x = (a + b) * c; y = x - a; z = min(x, abs(y)); }",
            &[3, -4, 5],
        );
    }

    #[test]
    fn control_flow_round_trips() {
        round_trip(
            "func f(a, n) {
                s = 0;
                i = 0;
            head:
                if (i >= n) goto done;
                s = s + a;
                i = i + 1;
                goto head;
            done:
                return s;
            }",
            &[7, 4],
        );
    }

    #[test]
    fn memory_ops_round_trip() {
        round_trip(
            "func f(p, v) { mem[p] = v; x = mem[p] + 1; mem[p + 1] = x; return x; }",
            &[2048, 9],
        );
    }

    #[test]
    fn negative_constants_round_trip() {
        round_trip("func f(a) { x = a * (0 - 3); y = x + 0 - 7; }", &[6]);
    }

    #[test]
    fn optimized_functions_still_print() {
        let mut f =
            parse_function("func f(a) { x = (2 + 3) * a; y = x * 1; z = y + 0; return z; }")
                .unwrap();
        crate::opt::fold_constants(&mut f);
        crate::simplify::simplify(&mut f);
        round_trip(&to_source(&f), &[11]);
    }

    #[test]
    fn sanitize_makes_identifiers() {
        assert_eq!(sanitize("my-func"), "my_func");
        assert_eq!(sanitize("9lives"), "f9lives");
    }
}
