//! A small string interner for variable and label names.
//!
//! Symbols are cheap copyable ids; every table in the compiler keys on
//! [`Sym`] instead of owned strings.

use std::collections::HashMap;
use std::fmt;

/// Interned symbol id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// Raw index of the symbol in its [`SymbolTable`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// Interner mapping names to [`Sym`] ids and back.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, Sym>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// Resolve a symbol back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this table.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Intern a fresh name that does not collide with any existing symbol;
    /// used for compiler-generated spill slots.
    pub fn fresh(&mut self, prefix: &str) -> Sym {
        let mut i = self.names.len();
        loop {
            let candidate = format!("{prefix}{i}");
            if self.by_name.contains_key(&candidate) {
                i += 1;
            } else {
                return self.intern(&candidate);
            }
        }
    }

    /// Re-intern a compiler-generated name produced by [`fresh`] on a
    /// snapshot of this table: the trailing digits are stripped to
    /// recover the prefix and a fresh non-colliding name is interned.
    ///
    /// This is the merge half of snapshot-based compilation: a worker
    /// covering a block against an immutable copy of the table names its
    /// spill slots locally; replaying those names here in creation order
    /// yields exactly the ids and names a sequential run would have
    /// produced.
    ///
    /// [`fresh`]: SymbolTable::fresh
    pub fn fresh_like(&mut self, name: &str) -> Sym {
        let prefix = name.trim_end_matches(|c: char| c.is_ascii_digit());
        self.fresh(prefix)
    }

    /// Iterate over `(Sym, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fresh_never_collides() {
        let mut t = SymbolTable::new();
        t.intern("spill2");
        let f = t.fresh("spill");
        assert_ne!(t.name(f), "spill2");
        assert!(t.name(f).starts_with("spill"));
    }

    #[test]
    fn fresh_like_replays_snapshot_names() {
        // A worker names spills against a snapshot; replaying them on the
        // original table gives identical ids and names.
        let mut base = SymbolTable::new();
        base.intern("a");
        let mut snap = base.clone();
        let s0 = snap.fresh("__spill");
        let s1 = snap.fresh("__spill");
        let r0 = base.fresh_like(snap.name(s0));
        let r1 = base.fresh_like(snap.name(s1));
        assert_eq!((r0, base.name(r0)), (s0, snap.name(s0)));
        assert_eq!((r1, base.name(r1)), (s1, snap.name(s1)));
    }

    #[test]
    fn fresh_like_diverges_when_tables_differ() {
        // When the merged table already gained other spills, replay picks
        // the next free name, exactly as a sequential fresh() would.
        let mut base = SymbolTable::new();
        let mut snap = base.clone();
        let earlier = base.fresh("__spill"); // another block's slot
        let s = snap.fresh("__spill"); // this block's local slot
        let r = base.fresh_like(snap.name(s));
        assert_ne!(r, earlier);
        assert_eq!(base.name(r), "__spill1");
        let _ = s;
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("y");
        let got: Vec<_> = t.iter().collect();
        assert_eq!(got, vec![(a, "x"), (b, "y")]);
    }
}
