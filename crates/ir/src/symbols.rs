//! A small string interner for variable and label names.
//!
//! Symbols are cheap copyable ids; every table in the compiler keys on
//! [`Sym`] instead of owned strings.

use std::collections::HashMap;
use std::fmt;

/// Interned symbol id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// Raw index of the symbol in its [`SymbolTable`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// Interner mapping names to [`Sym`] ids and back.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, Sym>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.by_name.get(name).copied()
    }

    /// Resolve a symbol back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this table.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Intern a fresh name that does not collide with any existing symbol;
    /// used for compiler-generated spill slots.
    pub fn fresh(&mut self, prefix: &str) -> Sym {
        let mut i = self.names.len();
        loop {
            let candidate = format!("{prefix}{i}");
            if self.by_name.contains_key(&candidate) {
                i += 1;
            } else {
                return self.intern(&candidate);
            }
        }
    }

    /// Iterate over `(Sym, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fresh_never_collides() {
        let mut t = SymbolTable::new();
        t.intern("spill2");
        let f = t.fresh("spill");
        assert_ne!(t.name(f), "spill2");
        assert!(t.name(f).starts_with("spill"));
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        let b = t.intern("y");
        let got: Vec<_> = t.iter().collect();
        assert_eq!(got, vec![(a, "x"), (b, "y")]);
    }
}
