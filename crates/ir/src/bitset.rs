//! A small growable bitset used for reachability and liveness sets.
//!
//! The covering engine manipulates many node sets of a few dozen elements;
//! a `Vec<u64>`-backed set is both faster and more predictable than hash
//! sets and keeps iteration order deterministic (ascending index).

use std::fmt;

/// Fixed-capacity bitset over `usize` indices.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of valid indices (bits above this are always zero).
    len: usize,
}

impl BitSet {
    /// Create a set able to hold indices `0..len`, all clear.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity in indices.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Set bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Test bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True if `self` and `other` share any set bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True if every set bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over set indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Grow capacity to at least `len` indices, preserving contents.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }
}

/// Iterator over set bit indices; see [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            if i >= self.len {
                self.grow(i + 1);
            }
            self.insert(i);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 3, 5, 70].into_iter().collect();
        let b: BitSet = [3usize, 70].into_iter().collect();
        let mut a2 = a.clone();
        a2.grow(71);
        let mut b2 = b.clone();
        b2.grow(71);
        assert!(b2.is_subset(&a2));
        assert!(a2.intersects(&b2));
        let mut diff = a2.clone();
        diff.subtract(&b2);
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![1, 5]);
        let mut uni = diff.clone();
        uni.union_with(&b2);
        assert_eq!(uni.iter().collect::<Vec<_>>(), vec![1, 3, 5, 70]);
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [64usize, 2, 127, 0].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 64, 127]);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(100));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }
}
