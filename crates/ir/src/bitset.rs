//! A small growable bitset used for reachability and liveness sets.
//!
//! The covering engine manipulates many node sets of a few dozen elements;
//! a `Vec<u64>`-backed set is both faster and more predictable than hash
//! sets and keeps iteration order deterministic (ascending index).

use std::fmt;

/// Fixed-capacity bitset over `usize` indices.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of valid indices (bits above this are always zero).
    len: usize,
}

impl BitSet {
    /// Create a set able to hold indices `0..len`, all clear.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Create a set holding every index in `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        s
    }

    /// Capacity in indices.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Set bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Test bit `i`.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True if `self` and `other` share any set bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True if every set bit of `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over set indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Grow capacity to at least `len` indices, preserving contents.
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            self.words.resize(len.div_ceil(64), 0);
        }
    }
}

/// Lexicographic order over the *ascending element sequences* of two
/// sets: `{0, 5} < {0, 9}` and `{0} < {0, 5}` (a proper prefix sorts
/// first), exactly the order `a.iter().collect::<Vec<_>>()` would give —
/// but computed word-at-a-time without allocating. Ties on content are
/// broken by capacity so the order stays consistent with the derived
/// `Eq` (which compares the backing words *and* the length).
impl Ord for BitSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let n = self.words.len().max(other.words.len());
        for i in 0..n {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            if a == b {
                continue;
            }
            // The lowest differing bit `d` belongs to exactly one set;
            // call it X. X's element sequence matches the other's up to
            // `d`, then X has `d` where the other has its next element
            // (> d) or nothing. So X sorts first iff the other set has
            // any element above `d`; otherwise the other set is a proper
            // prefix of X and sorts first.
            let low = (a ^ b) & (a ^ b).wrapping_neg();
            let above = !(low | (low - 1));
            let (holder_is_self, rest_word, rest_tail) = if a & low != 0 {
                (true, b, &other.words)
            } else {
                (false, a, &self.words)
            };
            let rest_has_more = rest_word & above != 0
                || rest_tail
                    .get(i + 1..)
                    .is_some_and(|tail| tail.iter().any(|&w| w != 0));
            return match (holder_is_self, rest_has_more) {
                (true, true) | (false, false) => Ordering::Less,
                (true, false) | (false, true) => Ordering::Greater,
            };
        }
        self.len.cmp(&other.len)
    }
}

impl PartialOrd for BitSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Iterator over set bit indices; see [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            if i >= self.len {
                self.grow(i + 1);
            }
            self.insert(i);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A dense boolean matrix packed as bitset rows in one allocation.
///
/// The covering engine's pairwise relations — conflict matrices, DAG
/// reachability — are square boolean tables probed millions of times per
/// block. One `Vec<u64>` with a fixed row stride keeps every row cache-
/// adjacent and lets row-level operations (intersection, union, overlap
/// tests) run word-at-a-time instead of bit-at-a-time.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    words: Vec<u64>,
    /// Words per row.
    stride: usize,
    rows: usize,
    cols: usize,
}

impl BitMatrix {
    /// An all-zero `rows` × `cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        let stride = cols.div_ceil(64);
        BitMatrix {
            words: vec![0; rows * stride],
            stride,
            rows,
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Set bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    pub fn set(&mut self, r: usize, c: usize) {
        assert!(
            r < self.rows && c < self.cols,
            "bit ({r}, {c}) out of range"
        );
        self.words[r * self.stride + c / 64] |= 1 << (c % 64);
    }

    /// Test bit `(r, c)`.
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r < self.rows
            && c < self.cols
            && self.words[r * self.stride + c / 64] & (1 << (c % 64)) != 0
    }

    /// The words backing row `r` (low bit of word 0 is column 0).
    pub fn row_words(&self, r: usize) -> &[u64] {
        &self.words[r * self.stride..(r + 1) * self.stride]
    }

    /// True if row `r` shares any set column with `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set`'s capacity differs from the column count.
    pub fn row_intersects(&self, r: usize, set: &BitSet) -> bool {
        assert_eq!(set.len, self.cols, "bitset capacity mismatch");
        self.row_words(r)
            .iter()
            .zip(&set.words)
            .any(|(a, b)| a & b != 0)
    }

    /// `set &= row r`.
    ///
    /// # Panics
    ///
    /// Panics if `set`'s capacity differs from the column count.
    pub fn intersect_row_into(&self, r: usize, set: &mut BitSet) {
        assert_eq!(set.len, self.cols, "bitset capacity mismatch");
        for (dst, src) in set.words.iter_mut().zip(self.row_words(r)) {
            *dst &= src;
        }
    }

    /// `set |= row r`.
    ///
    /// # Panics
    ///
    /// Panics if `set`'s capacity differs from the column count.
    pub fn union_row_into(&self, r: usize, set: &mut BitSet) {
        assert_eq!(set.len, self.cols, "bitset capacity mismatch");
        for (dst, src) in set.words.iter_mut().zip(self.row_words(r)) {
            *dst |= src;
        }
    }

    /// `row dst |= row src` (used to accumulate reachability in
    /// topological order).
    pub fn or_row_from(&mut self, dst: usize, src: usize) {
        assert!(dst < self.rows && src < self.rows, "row out of range");
        for k in 0..self.stride {
            let v = self.words[src * self.stride + k];
            self.words[dst * self.stride + k] |= v;
        }
    }

    /// Row `r` as a freestanding [`BitSet`] (capacity = column count).
    pub fn row_to_bitset(&self, r: usize) -> BitSet {
        BitSet {
            words: self.row_words(r).to_vec(),
            len: self.cols,
        }
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut rows = f.debug_list();
        for r in 0..self.rows {
            rows.entry(&self.row_to_bitset(r));
        }
        rows.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 3, 5, 70].into_iter().collect();
        let b: BitSet = [3usize, 70].into_iter().collect();
        let mut a2 = a.clone();
        a2.grow(71);
        let mut b2 = b.clone();
        b2.grow(71);
        assert!(b2.is_subset(&a2));
        assert!(a2.intersects(&b2));
        let mut diff = a2.clone();
        diff.subtract(&b2);
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![1, 5]);
        let mut uni = diff.clone();
        uni.union_with(&b2);
        assert_eq!(uni.iter().collect::<Vec<_>>(), vec![1, 3, 5, 70]);
    }

    #[test]
    fn iter_ascending() {
        let s: BitSet = [64usize, 2, 127, 0].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 64, 127]);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(100));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    /// `Ord` must agree with lexicographic order over the ascending
    /// element sequences — the order the old allocation-per-comparison
    /// sort key (`iter().collect::<Vec<_>>()`) produced.
    #[test]
    fn ord_matches_element_sequence_order() {
        let cap = 200;
        let sets: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![0, 5],
            vec![0, 5, 9],
            vec![0, 9],
            vec![0, 64],
            vec![0, 64, 130],
            vec![1],
            vec![5],
            vec![63, 64],
            vec![64],
            vec![64, 65],
            vec![130],
            vec![199],
        ];
        let bits: Vec<BitSet> = sets
            .iter()
            .map(|els| {
                let mut b = BitSet::new(cap);
                for &e in els {
                    b.insert(e);
                }
                b
            })
            .collect();
        for (i, a) in bits.iter().enumerate() {
            for (j, b) in bits.iter().enumerate() {
                assert_eq!(
                    a.cmp(b),
                    sets[i].cmp(&sets[j]),
                    "order of {:?} vs {:?}",
                    sets[i],
                    sets[j]
                );
            }
        }
    }

    #[test]
    fn ord_consistent_with_eq() {
        let a: BitSet = [1usize, 70].into_iter().collect();
        let b = a.clone();
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        // Same elements at different capacities are unequal under the
        // derived `Eq`; `Ord` must not call them equal either.
        let mut c = a.clone();
        c.grow(500);
        assert_ne!(a, c);
        assert_ne!(a.cmp(&c), std::cmp::Ordering::Equal);
    }

    #[test]
    fn full_sets_every_bit() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let s = BitSet::full(len);
            assert_eq!(s.count(), len);
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..len).collect::<Vec<_>>());
        }
    }

    #[test]
    fn matrix_set_contains_rows() {
        let mut m = BitMatrix::new(3, 130);
        m.set(0, 0);
        m.set(0, 129);
        m.set(2, 64);
        assert!(m.contains(0, 0) && m.contains(0, 129) && m.contains(2, 64));
        assert!(!m.contains(1, 0) && !m.contains(0, 64));
        assert!(!m.contains(5, 0));
        assert_eq!(m.row_to_bitset(0).iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn matrix_row_ops() {
        let mut m = BitMatrix::new(2, 100);
        m.set(0, 3);
        m.set(0, 70);
        m.set(1, 70);
        let mut s = BitSet::full(100);
        assert!(m.row_intersects(0, &s));
        m.intersect_row_into(0, &mut s);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
        let mut t = BitSet::new(100);
        m.union_row_into(1, &mut t);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![70]);
        assert!(!m.row_intersects(1, &{
            let mut z = BitSet::new(100);
            z.insert(3);
            z
        }));
        m.or_row_from(1, 0);
        assert_eq!(m.row_to_bitset(1).iter().collect::<Vec<_>>(), vec![3, 70]);
    }
}
