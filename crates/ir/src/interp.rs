//! Reference interpreter for [`Function`]s.
//!
//! This is the semantic oracle for the whole reproduction: generated VLIW
//! code, run on the instruction-level simulator, must leave memory in the
//! same state and return the same value as this interpreter. It mirrors the
//! inter-block value model of [`crate::program`]: named variables live in
//! memory at the addresses fixed by [`MemLayout`], blocks read entry values
//! through `Input` leaves and write assignments back through `StoreVar`
//! roots.

use crate::dag::BlockDag;
use crate::op::Op;
use crate::program::{Function, MemLayout, Terminator};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Runtime failure of the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Executed more than the configured maximum number of block
    /// transitions (almost certainly an infinite loop).
    StepLimit(usize),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit(n) => write!(f, "exceeded step limit of {n} blocks"),
        }
    }
}

impl Error for InterpError {}

/// Result of running a function to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpResult {
    /// Final memory contents (only addresses ever written or preloaded).
    pub memory: BTreeMap<i64, i64>,
    /// Value of the executed `return`, if it carried one.
    pub return_value: Option<i64>,
    /// Number of basic blocks executed.
    pub blocks_executed: usize,
}

/// The interpreter; construct with [`Interpreter::new`], seed arguments,
/// then [`Interpreter::run`].
#[derive(Debug, Clone)]
pub struct Interpreter<'f> {
    func: &'f Function,
    layout: MemLayout,
    memory: BTreeMap<i64, i64>,
    step_limit: usize,
}

impl<'f> Interpreter<'f> {
    /// Create an interpreter with the default memory layout and a step
    /// limit of 1e6 blocks.
    pub fn new(func: &'f Function) -> Self {
        let layout = MemLayout::for_function(func);
        Interpreter {
            func,
            layout,
            memory: BTreeMap::new(),
            step_limit: 1_000_000,
        }
    }

    /// Use a caller-provided layout (must match the one given to the code
    /// generator when differential-testing).
    pub fn with_layout(func: &'f Function, layout: MemLayout) -> Self {
        Interpreter {
            func,
            layout,
            memory: BTreeMap::new(),
            step_limit: 1_000_000,
        }
    }

    /// Bound the number of executed blocks (default 1e6).
    pub fn step_limit(&mut self, limit: usize) -> &mut Self {
        self.step_limit = limit;
        self
    }

    /// Bind positional arguments to the function parameters.
    ///
    /// # Panics
    ///
    /// Panics if more arguments than parameters are supplied.
    pub fn args(&mut self, args: &[i64]) -> &mut Self {
        assert!(
            args.len() <= self.func.params.len(),
            "too many arguments: {} > {}",
            args.len(),
            self.func.params.len()
        );
        for (&p, &v) in self.func.params.iter().zip(args) {
            self.memory.insert(self.layout.addr(p), v);
        }
        self
    }

    /// Preload an arbitrary memory word (for `mem[...]` test inputs).
    pub fn poke(&mut self, addr: i64, value: i64) -> &mut Self {
        self.memory.insert(addr, value);
        self
    }

    /// Execute the function.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::StepLimit`] when the block budget runs out.
    pub fn run(&mut self) -> Result<InterpResult, InterpError> {
        let mut current = self.func.entry;
        let mut blocks_executed = 0usize;
        loop {
            blocks_executed += 1;
            if blocks_executed > self.step_limit {
                return Err(InterpError::StepLimit(self.step_limit));
            }
            let block = self.func.block(current);
            let values = self.eval_block(&block.dag);
            match &block.term {
                Terminator::Jump(t) => current = *t,
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    current = if values[cond.index()] != 0 {
                        *if_true
                    } else {
                        *if_false
                    };
                }
                Terminator::Return(v) => {
                    return Ok(InterpResult {
                        memory: self.memory.clone(),
                        return_value: v.map(|n| values[n.index()]),
                        blocks_executed,
                    });
                }
            }
        }
    }

    /// Evaluate one block DAG, applying its memory effects; returns the
    /// value of every node (stores yield 0).
    ///
    /// Named-variable reads observe block-*entry* values: all `Input`
    /// leaves are snapshotted before any store executes, and `StoreVar`
    /// write-backs are applied after all dynamic stores.
    fn eval_block(&mut self, dag: &BlockDag) -> Vec<i64> {
        let n = dag.len();
        let mut values = vec![0i64; n];
        // Pass 1: snapshot named-variable entry values.
        for (id, node) in dag.iter() {
            if node.op == Op::Input {
                let addr = self.layout.addr(node.sym.unwrap());
                values[id.index()] = self.memory.get(&addr).copied().unwrap_or(0);
            }
        }
        // Pass 2: evaluate in id order (operands precede consumers, and
        // dynamic memory ops appear in program order).
        let mut pending_var_stores: Vec<(i64, i64)> = Vec::new();
        for (id, node) in dag.iter() {
            match node.op {
                Op::Input => {}
                Op::Const => values[id.index()] = node.imm.unwrap(),
                Op::Load => {
                    let addr = values[node.args[0].index()];
                    values[id.index()] = self.memory.get(&addr).copied().unwrap_or(0);
                }
                Op::Store => {
                    let addr = values[node.args[0].index()];
                    let v = values[node.args[1].index()];
                    self.memory.insert(addr, v);
                }
                Op::StoreVar => {
                    let addr = self.layout.addr(node.sym.unwrap());
                    let v = values[node.args[0].index()];
                    pending_var_stores.push((addr, v));
                }
                op => {
                    let args: Vec<i64> = node.args.iter().map(|a| values[a.index()]).collect();
                    values[id.index()] = op.eval(&args);
                }
            }
        }
        // Pass 3: variable write-backs (block-end semantics).
        for (addr, v) in pending_var_stores {
            self.memory.insert(addr, v);
        }
        values
    }

    /// Read a named variable's current memory value (post-run inspection).
    pub fn read_var(&self, name: &str) -> Option<i64> {
        let sym = self.func.syms.get(name)?;
        self.memory.get(&self.layout.addr(sym)).copied()
    }

    /// The layout in use.
    pub fn layout(&self) -> &MemLayout {
        &self.layout
    }
}

/// Convenience: parse nothing, just run `func` with `args` and return the
/// result.
///
/// # Errors
///
/// Propagates [`InterpError`] from [`Interpreter::run`].
pub fn run_function(func: &Function, args: &[i64]) -> Result<InterpResult, InterpError> {
    Interpreter::new(func).args(args).run()
}

/// Evaluate a single straight-line block in isolation given named inputs;
/// returns the block-exit value of every named variable that was stored.
/// Used heavily by codegen differential tests.
pub fn eval_block_isolated(func: &Function, inputs: &[(&str, i64)]) -> BTreeMap<String, i64> {
    let mut interp = Interpreter::new(func);
    for (name, v) in inputs {
        if let Some(sym) = func.syms.get(name) {
            let addr = interp.layout.addr(sym);
            interp.poke(addr, *v);
        }
    }
    let res = interp.run().expect("isolated block cannot loop");
    let mut out = BTreeMap::new();
    for (sym, name) in func.syms.iter() {
        if let Some(&v) = res.memory.get(&interp.layout.addr(sym)) {
            out.insert(name.to_owned(), v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    #[test]
    fn straight_line_arithmetic() {
        let f = parse_function("func f(a, b) { x = a * b + 2; y = x - a; }").unwrap();
        let mut i = Interpreter::new(&f);
        i.args(&[3, 4]);
        let r = i.run().unwrap();
        assert_eq!(i.read_var("x"), Some(14));
        assert_eq!(i.read_var("y"), Some(11));
        assert_eq!(r.return_value, None);
        assert_eq!(r.blocks_executed, 1);
    }

    #[test]
    fn loop_terminates_and_accumulates() {
        let src = "func sum(n) {
            s = 0;
            i = 0;
        head:
            if (i >= n) goto done;
            s = s + i;
            i = i + 1;
            goto head;
        done:
            return s;
        }";
        let f = parse_function(src).unwrap();
        let r = run_function(&f, &[5]).unwrap();
        assert_eq!(r.return_value, Some(1 + 2 + 3 + 4));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let f = parse_function("func f() { l: goto l; }").unwrap();
        let mut i = Interpreter::new(&f);
        i.step_limit(100);
        assert_eq!(i.run(), Err(InterpError::StepLimit(100)));
    }

    #[test]
    fn dynamic_memory_roundtrip() {
        let f =
            parse_function("func f(p) { mem[p] = 41; x = mem[p] + 1; mem[p + 1] = x; return x; }")
                .unwrap();
        let mut i = Interpreter::new(&f);
        i.args(&[2048]);
        let r = i.run().unwrap();
        assert_eq!(r.return_value, Some(42));
        assert_eq!(r.memory.get(&2048), Some(&41));
        assert_eq!(r.memory.get(&2049), Some(&42));
    }

    #[test]
    fn input_reads_see_entry_values_not_same_block_stores() {
        // y reads the *entry* x even though the block stores a new x.
        let src = "func f(x) {
            x = x + 1;
            goto next;
        next:
            y = x;
            return y;
        }";
        let f = parse_function(src).unwrap();
        let r = run_function(&f, &[10]).unwrap();
        // Block 1 reads x after the write-back: sees 11.
        assert_eq!(r.return_value, Some(11));
    }

    #[test]
    fn eval_block_isolated_reports_stores() {
        let f = parse_function("func f(a) { b = a + 1; c = b * b; }").unwrap();
        let out = eval_block_isolated(&f, &[("a", 6)]);
        assert_eq!(out.get("b"), Some(&7));
        assert_eq!(out.get("c"), Some(&49));
    }
}
