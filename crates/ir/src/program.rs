//! Functions, basic blocks, terminators, and the control-flow graph.
//!
//! The AVIV back end receives "a collection of basic blocks connected by
//! control flow information" (paper §III-C). Each [`BasicBlock`] owns one
//! expression [`BlockDag`]; the [`Terminator`] carries the control-flow
//! instruction that conventional tree covering lowers separately from the
//! Split-Node DAG machinery.
//!
//! # Inter-block value model
//!
//! Code is generated one basic block at a time (as in the paper), so values
//! that cross block boundaries live in *named variables* resident in data
//! memory: a block reads entry values through [`crate::Op::Input`] leaves
//! and writes its final assignments back through [`crate::Op::StoreVar`]
//! roots. [`MemLayout`] fixes the address of every named variable; the
//! interpreter and the simulator share it, which is what makes end-to-end
//! differential testing possible.

use crate::dag::{BlockDag, NodeId};
use crate::symbols::{Sym, SymbolTable};
use std::fmt;

/// Index of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on the value of `cond` (a comparison node in this
    /// block's DAG): nonzero goes to `if_true`.
    Branch {
        /// The condition node; must produce a value in this block's DAG.
        cond: NodeId,
        /// Successor when the condition is nonzero.
        if_true: BlockId,
        /// Successor when the condition is zero.
        if_false: BlockId,
    },
    /// Return from the function, optionally with a value node.
    Return(Option<NodeId>),
}

impl Terminator {
    /// Successor blocks in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Return(_) => vec![],
        }
    }
}

/// One basic block: a label, an expression DAG, and a terminator.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Source-level label, if the block was labelled.
    pub label: Option<Sym>,
    /// The block's computation as an expression DAG.
    pub dag: BlockDag,
    /// Control flow out of the block.
    pub term: Terminator,
}

/// A function: symbol table, parameters, and a CFG of basic blocks.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter variables, pre-loaded in memory at entry.
    pub params: Vec<Sym>,
    /// Blocks; [`Function::entry`] is executed first.
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
    /// Names for all variables and labels in the function.
    pub syms: SymbolTable,
}

impl Function {
    /// Access a block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Iterate `(BlockId, &BasicBlock)` in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Predecessor lists indexed by block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, b) in self.iter() {
            for s in b.term.successors() {
                preds[s.index()].push(id);
            }
        }
        preds
    }

    /// Blocks in reverse post-order from the entry (a supersequence-friendly
    /// iteration order for forward dataflow).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.index()] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.block(b).term.successors();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Structural validation of every block and terminator target.
    pub fn validate(&self) -> Result<(), String> {
        if self.entry.index() >= self.blocks.len() {
            return Err("entry block out of range".into());
        }
        for (id, b) in self.iter() {
            b.dag.validate().map_err(|e| format!("{id}: {e}"))?;
            for s in b.term.successors() {
                if s.index() >= self.blocks.len() {
                    return Err(format!("{id}: successor {s} out of range"));
                }
            }
            if let Terminator::Branch { cond, .. } = b.term {
                if cond.index() >= b.dag.len() {
                    return Err(format!("{id}: branch condition {cond} out of range"));
                }
                if !b.dag.node(cond).op.produces_value() {
                    return Err(format!("{id}: branch condition {cond} produces no value"));
                }
            }
            if let Terminator::Return(Some(v)) = b.term {
                if v.index() >= b.dag.len() || !b.dag.node(v).op.produces_value() {
                    return Err(format!("{id}: invalid return value node"));
                }
            }
        }
        Ok(())
    }

    /// Total DAG nodes across all blocks.
    pub fn total_nodes(&self) -> usize {
        self.blocks.iter().map(|b| b.dag.len()).sum()
    }
}

/// Address assignment for named variables and the start of the open
/// dynamically addressed region.
///
/// Named variables occupy addresses `0..n`; dynamic `mem[...]` accesses
/// should use addresses at or above [`MemLayout::dynamic_base`] — the
/// front end cannot check this statically, and aliasing a named variable
/// through a dynamic address is unspecified behavior (the interpreter and
/// the simulator may disagree about it under reordering).
#[derive(Debug, Clone)]
pub struct MemLayout {
    addrs: Vec<i64>,
    dynamic_base: i64,
}

impl MemLayout {
    /// Assign every symbol in the function's table a distinct address.
    pub fn for_function(f: &Function) -> Self {
        let n = f.syms.len();
        MemLayout {
            addrs: (0..n as i64).collect(),
            dynamic_base: 1024.max(n as i64),
        }
    }

    /// Address of a named variable.
    pub fn addr(&self, sym: Sym) -> i64 {
        self.addrs[sym.index()]
    }

    /// First address of the open dynamic region.
    pub fn dynamic_base(&self) -> i64 {
        self.dynamic_base
    }

    /// Reserve a fresh address beyond all named variables and previously
    /// reserved slots (used by the code generator for spill slots).
    pub fn reserve_slot(&mut self, sym: Sym) -> i64 {
        assert_eq!(sym.index(), self.addrs.len(), "reserve slots in sym order");
        let a = self.addrs.len() as i64;
        self.addrs.push(a);
        self.dynamic_base = self.dynamic_base.max(a + 1).max(1024);
        a
    }

    /// Number of symbols with assigned addresses.
    pub fn known_symbols(&self) -> usize {
        self.addrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn two_block_function() -> Function {
        let mut syms = SymbolTable::new();
        let x = syms.intern("x");
        let y = syms.intern("y");

        // bb0: y = x + 1; if (y > 10) goto bb1 else bb1 (self-contained).
        let mut dag0 = BlockDag::new();
        let nx = dag0.add_input(x);
        let one = dag0.add_const(1);
        let sum = dag0.add_op(Op::Add, &[nx, one]);
        dag0.add_store_var(y, sum);
        let ten = dag0.add_const(10);
        let cond = dag0.add_op(Op::CmpGt, &[sum, ten]);

        let mut dag1 = BlockDag::new();
        let ny = dag1.add_input(y);
        let two = dag1.add_const(2);
        let prod = dag1.add_op(Op::Mul, &[ny, two]);

        Function {
            name: "f".into(),
            params: vec![x],
            blocks: vec![
                BasicBlock {
                    label: None,
                    dag: dag0,
                    term: Terminator::Branch {
                        cond,
                        if_true: BlockId(1),
                        if_false: BlockId(1),
                    },
                },
                BasicBlock {
                    label: None,
                    dag: dag1,
                    term: Terminator::Return(Some(prod)),
                },
            ],
            entry: BlockId(0),
            syms,
        }
    }

    #[test]
    fn validate_and_cfg() {
        let f = two_block_function();
        f.validate().unwrap();
        assert_eq!(f.reverse_postorder(), vec![BlockId(0), BlockId(1)]);
        let preds = f.predecessors();
        assert_eq!(preds[1], vec![BlockId(0), BlockId(0)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn layout_is_injective() {
        let f = two_block_function();
        let layout = MemLayout::for_function(&f);
        let mut seen = std::collections::HashSet::new();
        for (s, _) in f.syms.iter() {
            assert!(seen.insert(layout.addr(s)), "duplicate address");
        }
        assert!(layout.dynamic_base() >= f.syms.len() as i64);
    }

    #[test]
    fn invalid_successor_rejected() {
        let mut f = two_block_function();
        f.blocks[1].term = Terminator::Jump(BlockId(9));
        assert!(f.validate().is_err());
    }
}
