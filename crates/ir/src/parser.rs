//! A small three-address front-end language.
//!
//! The paper's front end (SUIF + SPAM) turns C into basic-block expression
//! DAGs plus control flow. This module provides the equivalent substrate: a
//! straight-line language with labels, gotos, and conditional branches that
//! parses directly into a [`Function`] of value-numbered [`BlockDag`]s.
//!
//! ```text
//! func dot(a0, a1, b0, b1) {
//!     s = a0 * b0 + a1 * b1;
//!     if (s > 0) goto pos;
//!     s = 0 - s;
//! pos:
//!     return s;
//! }
//! ```
//!
//! Expressions support `+ - * / & | ^ << >>`, comparisons
//! `== != < <= > >=`, unary `- ~`, the intrinsics `abs(x)`, `min(x, y)`,
//! `max(x, y)`, and memory access `mem[expr]` (reads and writes).
//!
//! Within a block, variable reads resolve to the local defining node when
//! one exists (so `t = a + b; u = t * t;` builds a DAG, not a tree); every
//! variable assigned in a block is written back at block end, and reads in
//! later blocks load it again — see the inter-block value model in
//! [`crate::program`].

use crate::dag::{BlockDag, NodeId};
use crate::op::Op;
use crate::program::{BasicBlock, BlockId, Function, Terminator};
use crate::symbols::{Sym, SymbolTable};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_function`] with 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Punct(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(self.err("unterminated block comment")),
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_tok(&mut self) -> Result<(Tok, u32, u32), ParseError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            Tok::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        } else if c.is_ascii_digit() {
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("number out of range: {text}")))?;
            Tok::Num(v)
        } else {
            // Two-character operators first.
            let two: Option<&'static str> = match (c, self.peek2()) {
                (b'=', Some(b'=')) => Some("=="),
                (b'!', Some(b'=')) => Some("!="),
                (b'<', Some(b'=')) => Some("<="),
                (b'>', Some(b'=')) => Some(">="),
                (b'<', Some(b'<')) => Some("<<"),
                (b'>', Some(b'>')) => Some(">>"),
                _ => None,
            };
            if let Some(p) = two {
                self.bump();
                self.bump();
                Tok::Punct(p)
            } else {
                let p: &'static str = match c {
                    b'(' => "(",
                    b')' => ")",
                    b'{' => "{",
                    b'}' => "}",
                    b'[' => "[",
                    b']' => "]",
                    b';' => ";",
                    b':' => ":",
                    b',' => ",",
                    b'=' => "=",
                    b'+' => "+",
                    b'-' => "-",
                    b'*' => "*",
                    b'/' => "/",
                    b'&' => "&",
                    b'|' => "|",
                    b'^' => "^",
                    b'~' => "~",
                    b'<' => "<",
                    b'>' => ">",
                    _ => return Err(self.err(format!("unexpected character {:?}", c as char))),
                };
                self.bump();
                Tok::Punct(p)
            }
        };
        Ok((tok, line, col))
    }
}

/// Raw statements collected before block formation.
#[derive(Debug)]
enum RawStmt {
    Label(String),
    Assign(String, Expr),
    MemStore(Expr, Expr),
    Goto(String),
    IfGoto(Expr, String),
    Return(Option<Expr>),
}

/// Expression AST produced by the Pratt parser, lowered per block.
#[derive(Debug, Clone)]
enum Expr {
    Num(i64),
    Var(String),
    MemLoad(Box<Expr>),
    Unary(Op, Box<Expr>),
    Binary(Op, Box<Expr>, Box<Expr>),
}

struct Parser<'a> {
    lx: Lexer<'a>,
    tok: Tok,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lx = Lexer::new(src);
        let (tok, line, col) = lx.next_tok()?;
        Ok(Parser { lx, tok, line, col })
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn advance(&mut self) -> Result<Tok, ParseError> {
        let (tok, line, col) = self.lx.next_tok()?;
        self.line = line;
        self.col = col;
        Ok(std::mem::replace(&mut self.tok, tok))
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if matches!(&self.tok, Tok::Punct(q) if *q == p) {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.tok)))
        }
    }

    fn eat_punct(&mut self, p: &str) -> Result<bool, ParseError> {
        if matches!(&self.tok, Tok::Punct(q) if *q == p) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // Precedence climbing. Lower number binds looser.
    fn binop_prec(p: &str) -> Option<(Op, u8)> {
        Some(match p {
            "|" => (Op::Or, 1),
            "^" => (Op::Xor, 2),
            "&" => (Op::And, 3),
            "==" => (Op::CmpEq, 4),
            "!=" => (Op::CmpNe, 4),
            "<" => (Op::CmpLt, 5),
            "<=" => (Op::CmpLe, 5),
            ">" => (Op::CmpGt, 5),
            ">=" => (Op::CmpGe, 5),
            "<<" => (Op::Shl, 6),
            ">>" => (Op::Shr, 6),
            "+" => (Op::Add, 7),
            "-" => (Op::Sub, 7),
            "*" => (Op::Mul, 8),
            "/" => (Op::Div, 8),
            _ => return None,
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while let Tok::Punct(p) = &self.tok {
            let Some((op, prec)) = Self::binop_prec(p) else {
                break;
            };
            if prec < min_prec {
                break;
            }
            self.advance()?;
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-")? {
            return Ok(Expr::Unary(Op::Neg, Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("~")? {
            return Ok(Expr::Unary(Op::Compl, Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.tok.clone() {
            Tok::Num(v) => {
                self.advance()?;
                Ok(Expr::Num(v))
            }
            Tok::Punct("(") => {
                self.advance()?;
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.advance()?;
                match name.as_str() {
                    "mem" => {
                        self.expect_punct("[")?;
                        let addr = self.parse_expr()?;
                        self.expect_punct("]")?;
                        Ok(Expr::MemLoad(Box::new(addr)))
                    }
                    "abs" => {
                        self.expect_punct("(")?;
                        let e = self.parse_expr()?;
                        self.expect_punct(")")?;
                        Ok(Expr::Unary(Op::Abs, Box::new(e)))
                    }
                    "min" | "max" => {
                        let op = if name == "min" { Op::Min } else { Op::Max };
                        self.expect_punct("(")?;
                        let a = self.parse_expr()?;
                        self.expect_punct(",")?;
                        let b = self.parse_expr()?;
                        self.expect_punct(")")?;
                        Ok(Expr::Binary(op, Box::new(a), Box::new(b)))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn parse_stmt(&mut self) -> Result<RawStmt, ParseError> {
        match self.tok.clone() {
            Tok::Ident(name) => match name.as_str() {
                "goto" => {
                    self.advance()?;
                    let target = self.expect_ident()?;
                    self.expect_punct(";")?;
                    Ok(RawStmt::Goto(target))
                }
                "if" => {
                    self.advance()?;
                    self.expect_punct("(")?;
                    let cond = self.parse_expr()?;
                    self.expect_punct(")")?;
                    let kw = self.expect_ident()?;
                    if kw != "goto" {
                        return Err(self.err("expected `goto` after if condition"));
                    }
                    let target = self.expect_ident()?;
                    self.expect_punct(";")?;
                    Ok(RawStmt::IfGoto(cond, target))
                }
                "return" => {
                    self.advance()?;
                    if self.eat_punct(";")? {
                        Ok(RawStmt::Return(None))
                    } else {
                        let e = self.parse_expr()?;
                        self.expect_punct(";")?;
                        Ok(RawStmt::Return(Some(e)))
                    }
                }
                "mem" => {
                    self.advance()?;
                    self.expect_punct("[")?;
                    let addr = self.parse_expr()?;
                    self.expect_punct("]")?;
                    self.expect_punct("=")?;
                    let val = self.parse_expr()?;
                    self.expect_punct(";")?;
                    Ok(RawStmt::MemStore(addr, val))
                }
                _ => {
                    self.advance()?;
                    if self.eat_punct(":")? {
                        Ok(RawStmt::Label(name))
                    } else {
                        self.expect_punct("=")?;
                        let e = self.parse_expr()?;
                        self.expect_punct(";")?;
                        Ok(RawStmt::Assign(name, e))
                    }
                }
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }
}

/// Per-block lowering state: local variable bindings plus the last memory
/// operation for serialization edges.
struct BlockLowerer<'f> {
    dag: BlockDag,
    syms: &'f mut SymbolTable,
    locals: HashMap<String, NodeId>,
    assigned: Vec<String>,
    last_mem: Option<NodeId>,
}

impl<'f> BlockLowerer<'f> {
    fn new(syms: &'f mut SymbolTable) -> Self {
        BlockLowerer {
            dag: BlockDag::new(),
            syms,
            locals: HashMap::new(),
            assigned: Vec::new(),
            last_mem: None,
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> NodeId {
        match e {
            Expr::Num(v) => self.dag.add_const(*v),
            Expr::Var(name) => {
                if let Some(&n) = self.locals.get(name) {
                    n
                } else {
                    let s = self.syms.intern(name);
                    self.dag.add_input(s)
                }
            }
            Expr::MemLoad(addr) => {
                let a = self.lower_expr(addr);
                let n = self.dag.add_op(Op::Load, &[a]);
                // Serialize against the previous memory operation. Loads
                // never conflict with other loads, but keeping a single
                // chain is simple and conservative.
                if let Some(prev) = self.last_mem {
                    if prev != n {
                        self.dag.add_mem_dep(prev.min(n), prev.max(n));
                    }
                }
                self.last_mem = Some(self.last_mem.map_or(n, |p| p.max(n)));
                n
            }
            Expr::Unary(op, a) => {
                let na = self.lower_expr(a);
                self.dag.add_op(*op, &[na])
            }
            Expr::Binary(op, a, b) => {
                let na = self.lower_expr(a);
                let nb = self.lower_expr(b);
                self.dag.add_op(*op, &[na, nb])
            }
        }
    }

    fn assign(&mut self, name: &str, e: &Expr) {
        let v = self.lower_expr(e);
        self.locals.insert(name.to_owned(), v);
        if !self.assigned.iter().any(|n| n == name) {
            self.assigned.push(name.to_owned());
        }
    }

    fn mem_store(&mut self, addr: &Expr, val: &Expr) {
        let a = self.lower_expr(addr);
        let v = self.lower_expr(val);
        let s = self.dag.add_store(a, v);
        if let Some(prev) = self.last_mem {
            self.dag.add_mem_dep(prev, s);
        }
        self.last_mem = Some(s);
    }

    /// Finish the block: write every assigned variable back (in first-
    /// assignment order) and return the DAG.
    fn finish(mut self) -> BlockDag {
        let names = std::mem::take(&mut self.assigned);
        for name in names {
            let v = self.locals[&name];
            let s = self.syms.intern(&name);
            self.dag.add_store_var(s, v);
        }
        self.dag
    }
}

/// Parse one function in the mini language into a [`Function`].
///
/// # Errors
///
/// Returns a [`ParseError`] with source position on any lexical, syntactic,
/// or label-resolution failure.
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    let mut p = Parser::new(src)?;
    let kw = p.expect_ident()?;
    if kw != "func" {
        return Err(p.err("expected `func`"));
    }
    let name = p.expect_ident()?;
    p.expect_punct("(")?;
    let mut param_names = Vec::new();
    if !p.eat_punct(")")? {
        loop {
            param_names.push(p.expect_ident()?);
            if p.eat_punct(")")? {
                break;
            }
            p.expect_punct(",")?;
        }
    }
    p.expect_punct("{")?;
    let mut stmts = Vec::new();
    while !p.eat_punct("}")? {
        if p.tok == Tok::Eof {
            return Err(p.err("unexpected end of input inside function body"));
        }
        stmts.push(p.parse_stmt()?);
    }

    // Split the raw statement list into block-sized chunks. A label starts
    // a new block; a control statement ends one.
    struct ProtoBlock {
        label: Option<String>,
        body: Vec<RawStmt>,
        /// `None` means fall through to the next block.
        term: Option<RawStmt>,
    }
    let mut protos: Vec<ProtoBlock> = vec![ProtoBlock {
        label: None,
        body: Vec::new(),
        term: None,
    }];
    for s in stmts {
        match s {
            RawStmt::Label(l) => {
                // Labels always start a fresh block (the current one falls
                // through), except when the current block is still empty
                // and unlabeled.
                let cur = protos.last_mut().unwrap();
                if cur.body.is_empty() && cur.label.is_none() && cur.term.is_none() {
                    cur.label = Some(l);
                } else {
                    protos.push(ProtoBlock {
                        label: Some(l),
                        body: Vec::new(),
                        term: None,
                    });
                }
            }
            RawStmt::Goto(_) | RawStmt::IfGoto(..) | RawStmt::Return(_) => {
                let cur = protos.last_mut().unwrap();
                if cur.term.is_some() {
                    // Unreachable statement after a terminator: start an
                    // anonymous block so label-less dead code still parses.
                    protos.push(ProtoBlock {
                        label: None,
                        body: Vec::new(),
                        term: Some(s),
                    });
                } else {
                    cur.term = Some(s);
                }
            }
            body_stmt => {
                let cur = protos.last_mut().unwrap();
                if cur.term.is_some() {
                    protos.push(ProtoBlock {
                        label: None,
                        body: vec![body_stmt],
                        term: None,
                    });
                } else {
                    cur.body.push(body_stmt);
                }
            }
        }
    }

    let mut syms = SymbolTable::new();
    let params: Vec<Sym> = param_names.iter().map(|n| syms.intern(n)).collect();

    // Resolve labels to block ids.
    let mut label_map: HashMap<String, BlockId> = HashMap::new();
    for (i, pb) in protos.iter().enumerate() {
        if let Some(l) = &pb.label {
            if label_map.insert(l.clone(), BlockId(i as u32)).is_some() {
                return Err(ParseError {
                    msg: format!("duplicate label `{l}`"),
                    line: 0,
                    col: 0,
                });
            }
        }
    }
    let resolve = |l: &str| -> Result<BlockId, ParseError> {
        label_map.get(l).copied().ok_or_else(|| ParseError {
            msg: format!("unknown label `{l}`"),
            line: 0,
            col: 0,
        })
    };

    let nblocks = protos.len();
    let mut blocks = Vec::with_capacity(nblocks);
    for (i, pb) in protos.into_iter().enumerate() {
        let label = pb.label.as_deref().map(|l| syms.intern(l));
        let mut lower = BlockLowerer::new(&mut syms);
        for s in &pb.body {
            match s {
                RawStmt::Assign(n, e) => lower.assign(n, e),
                RawStmt::MemStore(a, v) => lower.mem_store(a, v),
                _ => unreachable!("labels/terminators filtered above"),
            }
        }
        let next = BlockId((i + 1) as u32);
        let fallthrough_ok = i + 1 < nblocks;
        let term = match &pb.term {
            Some(RawStmt::Goto(l)) => Terminator::Jump(resolve(l)?),
            Some(RawStmt::IfGoto(cond, l)) => {
                let c = lower.lower_expr(cond);
                if !fallthrough_ok {
                    return Err(ParseError {
                        msg: "conditional branch at end of function has no fallthrough".into(),
                        line: 0,
                        col: 0,
                    });
                }
                // The condition must survive until the terminator executes:
                // record it live-out under a synthetic name so the code
                // generator keeps it in a register.
                let csym = lower.syms.fresh("__cond");
                lower.dag.mark_live_out(csym, c);
                Terminator::Branch {
                    cond: c,
                    if_true: resolve(l)?,
                    if_false: next,
                }
            }
            Some(RawStmt::Return(Some(e))) => {
                let v = lower.lower_expr(e);
                let rsym = lower.syms.fresh("__ret");
                lower.dag.mark_live_out(rsym, v);
                Terminator::Return(Some(v))
            }
            Some(RawStmt::Return(None)) => Terminator::Return(None),
            Some(_) => unreachable!(),
            None => {
                if fallthrough_ok {
                    Terminator::Jump(next)
                } else {
                    Terminator::Return(None)
                }
            }
        };
        blocks.push(BasicBlock {
            label,
            dag: lower.finish(),
            term,
        });
    }

    let f = Function {
        name,
        params,
        blocks,
        entry: BlockId(0),
        syms,
    };
    f.validate().map_err(|e| ParseError {
        msg: format!("internal: lowered function failed validation: {e}"),
        line: 0,
        col: 0,
    })?;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_builds_one_block() {
        let f = parse_function("func f(a, b, c) {\n  t = a + b;\n  u = t * c;\n  out = u - t;\n}")
            .unwrap();
        assert_eq!(f.blocks.len(), 1);
        let dag = &f.blocks[0].dag;
        // 3 inputs + add + mul + sub + 3 storev
        assert_eq!(dag.len(), 9);
        assert_eq!(dag.stores().len(), 3);
        assert!(matches!(f.blocks[0].term, Terminator::Return(None)));
    }

    #[test]
    fn reads_reuse_local_definitions() {
        let f = parse_function("func f(a) { t = a + a; u = t + t; }").unwrap();
        let dag = &f.blocks[0].dag;
        // input a, add, add, storev t, storev u = 5 nodes (value numbering
        // keeps one input).
        assert_eq!(dag.len(), 5);
    }

    #[test]
    fn control_flow_blocks_and_labels() {
        let src = "func f(x) {
            y = x + 1;
            if (y > 10) goto big;
            y = y * 2;
            goto done;
        big:
            y = y - 1;
        done:
            return y;
        }";
        let f = parse_function(src).unwrap();
        assert_eq!(f.blocks.len(), 4);
        match f.blocks[0].term {
            Terminator::Branch {
                if_true, if_false, ..
            } => {
                assert_eq!(if_true, BlockId(2));
                assert_eq!(if_false, BlockId(1));
            }
            ref t => panic!("expected branch, got {t:?}"),
        }
        assert!(matches!(f.blocks[1].term, Terminator::Jump(BlockId(3))));
        // big falls through to done.
        assert!(matches!(f.blocks[2].term, Terminator::Jump(BlockId(3))));
        assert!(matches!(f.blocks[3].term, Terminator::Return(Some(_))));
    }

    #[test]
    fn mem_ops_are_serialized() {
        let f = parse_function("func f(p) { mem[p] = 1; x = mem[p]; mem[p + 1] = x; }").unwrap();
        let dag = &f.blocks[0].dag;
        assert!(dag.mem_deps().len() >= 2, "store->load and load->store");
        // Serialization edges participate in dependence.
        let desc = dag.descendants();
        let stores = dag.stores();
        let first_store = stores[0];
        let second_store = *stores.iter().find(|&&s| s != first_store).unwrap();
        assert!(dag.dependent(&desc, first_store, second_store));
    }

    #[test]
    fn precedence_and_intrinsics() {
        let f = parse_function("func f(a, b) { x = a + b * 2; y = min(a, abs(-b)); }").unwrap();
        let dag = &f.blocks[0].dag;
        // x = add(a, mul(b, 2))
        let x_store = dag
            .iter()
            .find(|(_, n)| n.op == Op::StoreVar && n.sym.map(|s| f.syms.name(s)) == Some("x"))
            .unwrap();
        let add = dag.node(dag.node(x_store.0).args[0]);
        assert_eq!(add.op, Op::Add);
        assert_eq!(dag.node(add.args[1]).op, Op::Mul);
        assert!(dag.iter().any(|(_, n)| n.op == Op::Min));
        assert!(dag.iter().any(|(_, n)| n.op == Op::Abs));
        assert!(dag.iter().any(|(_, n)| n.op == Op::Neg));
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_function("func f() { x = ; }").unwrap_err();
        assert!(e.line >= 1 && e.col > 1, "{e}");
        assert!(parse_function("func f() { goto nowhere; }").is_err());
        assert!(
            parse_function("func f() { a: a: }").is_err() || {
                // duplicate label via two blocks
                parse_function("func f() { a: x = 1; a: y = 2; }").is_err()
            }
        );
    }

    #[test]
    fn unreachable_code_after_terminator_still_parses() {
        let f = parse_function("func f() { return; x = 1; }").unwrap();
        assert_eq!(f.blocks.len(), 2);
        f.validate().unwrap();
    }
}
