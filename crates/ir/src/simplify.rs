//! Algebraic simplification and strength reduction.
//!
//! More of the "machine independent optimizations" the paper's front end
//! performs (§II): identity/annihilator rewrites (`x + 0 → x`,
//! `x * 0 → 0`, `x ^ x → 0`, double negation, ...) and optional strength
//! reduction of multiplications by powers of two into shifts. All rewrites
//! preserve the two's-complement wrapping semantics of [`Op::eval`].

use crate::dag::{BlockDag, NodeId};
use crate::op::Op;
use crate::opt::rebuild_with;
use crate::program::Function;

/// Apply algebraic identities across every block. Returns the number of
/// DAG nodes eliminated.
pub fn simplify(f: &mut Function) -> usize {
    rewrite_function(f, &algebraic_rewrite)
}

/// Replace multiplications by power-of-two constants with shifts (and
/// divisions by 1 with the value). This changes the operation mix — on
/// machines where shifters are cheaper or more plentiful than
/// multipliers, it frees multiplier slots. Returns the number of
/// multiplications rewritten.
pub fn strength_reduce(f: &mut Function) -> usize {
    let mut rewritten = 0usize;
    for block in &mut f.blocks {
        let before = count_op(&block.dag, Op::Mul);
        let (new_dag, map) =
            rebuild_with(&block.dag, false, |_| true, &[], Some(&strength_rewrite));
        remap_term(&mut block.term, &map);
        block.dag = new_dag;
        rewritten += before.saturating_sub(count_op(&block.dag, Op::Mul));
    }
    rewritten
}

fn count_op(dag: &BlockDag, op: Op) -> usize {
    dag.iter().filter(|(_, n)| n.op == op).count()
}

fn rewrite_function(f: &mut Function, rule: crate::opt::Rewriter<'_>) -> usize {
    let mut removed = 0usize;
    for block in &mut f.blocks {
        let before = block.dag.len();
        let (new_dag, map) = rebuild_with(&block.dag, false, |_| true, &[], Some(rule));
        remap_term(&mut block.term, &map);
        block.dag = new_dag;
        removed += before.saturating_sub(block.dag.len());
    }
    removed
}

fn remap_term(term: &mut crate::program::Terminator, map: &[Option<NodeId>]) {
    match term {
        crate::program::Terminator::Branch { cond, .. } => {
            *cond = map[cond.index()].expect("branch condition survives rewrites");
        }
        crate::program::Terminator::Return(Some(v)) => {
            *v = map[v.index()].expect("return value survives rewrites");
        }
        _ => {}
    }
}

fn const_of(dag: &BlockDag, n: NodeId) -> Option<i64> {
    let node = dag.node(n);
    (node.op == Op::Const).then(|| node.imm.unwrap())
}

/// The identity/annihilator rule set. Returns `Some(existing_node)` when
/// `op(args)` reduces to an already-built node or a constant.
fn algebraic_rewrite(dag: &mut BlockDag, op: Op, args: &[NodeId]) -> Option<NodeId> {
    use Op::*;
    let c = |dag: &BlockDag, i: usize| const_of(dag, args[i]);
    match op {
        Add => {
            // x + 0 → x (the DAG canonicalizes commutative operands, but
            // check both sides anyway).
            if c(dag, 1) == Some(0) {
                return Some(args[0]);
            }
            if c(dag, 0) == Some(0) {
                return Some(args[1]);
            }
            None
        }
        Sub => {
            if c(dag, 1) == Some(0) {
                return Some(args[0]);
            }
            if args[0] == args[1] {
                return Some(dag.add_const(0));
            }
            None
        }
        Mul => {
            if c(dag, 1) == Some(1) {
                return Some(args[0]);
            }
            if c(dag, 0) == Some(1) {
                return Some(args[1]);
            }
            if c(dag, 0) == Some(0) || c(dag, 1) == Some(0) {
                return Some(dag.add_const(0));
            }
            None
        }
        Div => {
            if c(dag, 1) == Some(1) {
                return Some(args[0]);
            }
            None
        }
        And => {
            if c(dag, 0) == Some(0) || c(dag, 1) == Some(0) {
                return Some(dag.add_const(0));
            }
            if c(dag, 1) == Some(-1) {
                return Some(args[0]);
            }
            if c(dag, 0) == Some(-1) {
                return Some(args[1]);
            }
            if args[0] == args[1] {
                return Some(args[0]);
            }
            None
        }
        Or => {
            if c(dag, 1) == Some(0) {
                return Some(args[0]);
            }
            if c(dag, 0) == Some(0) {
                return Some(args[1]);
            }
            if args[0] == args[1] {
                return Some(args[0]);
            }
            None
        }
        Xor => {
            if c(dag, 1) == Some(0) {
                return Some(args[0]);
            }
            if c(dag, 0) == Some(0) {
                return Some(args[1]);
            }
            if args[0] == args[1] {
                return Some(dag.add_const(0));
            }
            None
        }
        Shl | Shr => {
            if c(dag, 1) == Some(0) {
                return Some(args[0]);
            }
            None
        }
        Min | Max => {
            if args[0] == args[1] {
                return Some(args[0]);
            }
            None
        }
        Neg => {
            // neg(neg(x)) → x
            let inner = dag.node(args[0]).clone();
            if inner.op == Neg {
                return Some(inner.args[0]);
            }
            None
        }
        Compl => {
            let inner = dag.node(args[0]).clone();
            if inner.op == Compl {
                return Some(inner.args[0]);
            }
            None
        }
        Abs => {
            let inner = dag.node(args[0]).clone();
            if inner.op == Abs {
                return Some(args[0]);
            }
            None
        }
        _ => None,
    }
}

/// Strength reduction: `x * 2^k → x << k` (both operand orders).
fn strength_rewrite(dag: &mut BlockDag, op: Op, args: &[NodeId]) -> Option<NodeId> {
    if op != Op::Mul {
        return None;
    }
    for (ci, xi) in [(1usize, 0usize), (0, 1)] {
        if let Some(v) = const_of(dag, args[ci]) {
            if v > 0 && (v as u64).is_power_of_two() {
                let k = (v as u64).trailing_zeros() as i64;
                let kn = dag.add_const(k);
                return Some(dag.add_op(Op::Shl, &[args[xi], kn]));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_function;
    use crate::parser::parse_function;

    fn check_preserves(src: &str, args: &[i64], pass: fn(&mut Function) -> usize) -> usize {
        let mut f = parse_function(src).unwrap();
        let before = run_function(&f, args).unwrap();
        let n = pass(&mut f);
        f.validate().unwrap();
        let after = run_function(&f, args).unwrap();
        assert_eq!(before.memory, after.memory, "{src}");
        assert_eq!(before.return_value, after.return_value, "{src}");
        n
    }

    #[test]
    fn identities_fire_and_preserve_semantics() {
        let n = check_preserves(
            "func f(a, b) {
                x = a + 0;
                y = b * 1;
                z = (a - a) + (b ^ b);
                w = x | 0;
                v = ~(~a);
                u = a & a;
                return x + y + z + w + v + u;
            }",
            &[7, -3],
            simplify,
        );
        assert!(n >= 5, "expected several nodes removed, got {n}");
    }

    #[test]
    fn annihilators_fold_to_constants() {
        let mut f = parse_function("func f(a) { x = a * 0; y = x & a; return y; }").unwrap();
        simplify(&mut f);
        // y = (a*0) & a = 0 & a = 0.
        let r = run_function(&f, &[123]).unwrap();
        assert_eq!(r.return_value, Some(0));
        // The multiply disappeared entirely.
        assert!(!f.blocks[0].dag.iter().any(|(_, n)| n.op == Op::Mul));
    }

    #[test]
    fn strength_reduction_rewrites_pow2_muls() {
        let mut f =
            parse_function("func f(a) { x = a * 8; y = 4 * a; z = a * 3; return x + y + z; }")
                .unwrap();
        let before = run_function(&f, &[5]).unwrap();
        let n = strength_reduce(&mut f);
        assert_eq!(n, 2, "a*8 and 4*a rewritten, a*3 kept");
        let after = run_function(&f, &[5]).unwrap();
        assert_eq!(before.return_value, after.return_value);
        let shls = f.blocks[0]
            .dag
            .iter()
            .filter(|(_, node)| node.op == Op::Shl)
            .count();
        assert_eq!(shls, 2);
    }

    #[test]
    fn negative_and_wrapping_cases_are_safe() {
        // -1 as the AND identity; x - x with extremes; double negation of
        // i64::MIN (wrapping).
        check_preserves(
            "func f(a) { x = a & (0 - 1); y = a - a; z = 0 - (0 - a); return x + y + z; }",
            &[i64::MIN],
            simplify,
        );
    }

    #[test]
    fn branch_conditions_survive_rewrites() {
        let src = "func f(a) {
            c = (a + 0) * 1;
            if (c > 5) goto big;
            c = 0 - c;
        big:
            return c;
        }";
        let mut f = parse_function(src).unwrap();
        simplify(&mut f);
        f.validate().unwrap();
        assert_eq!(run_function(&f, &[9]).unwrap().return_value, Some(9));
        assert_eq!(run_function(&f, &[3]).unwrap().return_value, Some(-3));
    }
}
