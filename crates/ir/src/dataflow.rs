//! Global dataflow analysis over the [`Function`] CFG.
//!
//! The covering engine and the program checker both need whole-function
//! facts — which variables are live out of a block, which definitions
//! reach a use, which blocks dominate which — that the per-block DAGs
//! cannot answer alone. This module provides the classic iterative
//! gen/kill worklist solver over [`BitSet`] domains plus the canned
//! analyses built on it:
//!
//! * [`liveness`] — backward may-analysis of variable liveness, seeded
//!   with an explicit exit-live set,
//! * [`definite_assignment`] — forward must-analysis of variables
//!   assigned on every path (the basis of the uninitialized-use check),
//! * [`reaching_defs`] / [`def_use`] — forward may-analysis of reaching
//!   definitions and the def-use chains derived from it,
//! * [`dominators`] — forward must-analysis of block dominance.
//!
//! All solvers are deterministic: blocks are seeded in (reverse)
//! post-order and facts live in fixed-capacity bit sets, so two runs over
//! the same function produce identical results bit for bit.
//!
//! Variable semantics follow the interpreter's block contract: every
//! `Input` leaf reads the value a variable had at *block entry*, and
//! every `StoreVar` root takes effect at *block exit*. Consequently a
//! block's whole read set is upward-exposed and its whole write set is
//! downward-exposed — the transfer function `out = gen ∪ (in − kill)`
//! is exact, not an approximation.

use crate::bitset::BitSet;
use crate::dag::NodeId;
use crate::op::Op;
use crate::program::{BlockId, Function, Terminator};
use crate::symbols::Sym;

/// Which way facts propagate along CFG edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors' exits into a block's entry.
    Forward,
    /// Facts flow from successors' entries into a block's exit.
    Backward,
}

/// How facts from several incoming edges combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confluence {
    /// Union: a fact holds if it holds on *some* path.
    May,
    /// Intersection: a fact holds only if it holds on *every* path.
    Must,
}

/// A solved dataflow problem: one fact set per block boundary.
///
/// `on_entry[b]` / `on_exit[b]` are the facts at block `b`'s entry and
/// exit regardless of the direction the analysis ran in.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Facts holding at each block's entry.
    pub on_entry: Vec<BitSet>,
    /// Facts holding at each block's exit.
    pub on_exit: Vec<BitSet>,
}

/// Solve a gen/kill dataflow problem over `f`'s CFG by worklist
/// iteration.
///
/// `domain` is the universe size (all bit sets have this capacity);
/// `gen`/`kill` give one transfer pair per block; `boundary` is the fact
/// set at the CFG boundary — the function entry for forward problems,
/// every `return` for backward ones. For [`Confluence::Must`] problems,
/// blocks with no incoming information (unreachable code) converge to
/// the full universe — mask with reachability before reporting.
///
/// # Panics
///
/// Panics if `gen`/`kill` lengths or bit-set capacities disagree with
/// the function and `domain`.
pub fn solve(
    f: &Function,
    domain: usize,
    direction: Direction,
    confluence: Confluence,
    gen: &[BitSet],
    kill: &[BitSet],
    boundary: &BitSet,
) -> Solution {
    let n = f.blocks.len();
    assert_eq!(gen.len(), n, "one gen set per block");
    assert_eq!(kill.len(), n, "one kill set per block");
    assert_eq!(boundary.capacity(), domain, "boundary capacity");
    for s in gen.iter().chain(kill) {
        assert_eq!(s.capacity(), domain, "gen/kill capacity");
    }

    let preds = f.predecessors();
    let succs: Vec<Vec<BlockId>> = f.iter().map(|(_, b)| b.term.successors()).collect();

    // `feed[b]` are the blocks whose computed fact flows into `b`;
    // `dependents[b]` are the blocks to revisit when `b`'s fact changes.
    let (feed, dependents): (&Vec<Vec<BlockId>>, &Vec<Vec<BlockId>>) = match direction {
        Direction::Forward => (&preds, &succs),
        Direction::Backward => (&succs, &preds),
    };
    let at_boundary = |b: usize| match direction {
        Direction::Forward => b == f.entry.index(),
        Direction::Backward => matches!(f.blocks[b].term, Terminator::Return(_)),
    };

    let full = {
        let mut s = BitSet::new(domain);
        for i in 0..domain {
            s.insert(i);
        }
        s
    };
    let init = match confluence {
        Confluence::May => BitSet::new(domain),
        Confluence::Must => full.clone(),
    };
    // `met[b]` is the meet over incoming edges; `derived[b]` applies the
    // block's transfer function to it. Flow direction decides which is
    // on_entry and which is on_exit.
    let mut met: Vec<BitSet> = vec![init.clone(); n];
    let mut derived: Vec<BitSet> = vec![init; n];

    // Seed the worklist in an order that converges fast: reverse
    // post-order for forward problems, its reverse for backward ones.
    // Unreachable blocks are appended so they still get (vacuous) facts.
    let rpo = f.reverse_postorder();
    let mut order: Vec<usize> = rpo.iter().map(|b| b.index()).collect();
    let in_rpo: Vec<bool> = {
        let mut seen = vec![false; n];
        for b in &rpo {
            seen[b.index()] = true;
        }
        seen
    };
    order.extend((0..n).filter(|&b| !in_rpo[b]));
    if direction == Direction::Backward {
        order.reverse();
    }

    let mut queue: std::collections::VecDeque<usize> = order.into();
    let mut queued = vec![true; n];
    while let Some(b) = queue.pop_front() {
        queued[b] = false;
        // Meet over everything flowing in, plus the boundary at CFG
        // boundary blocks.
        let mut acc = match confluence {
            Confluence::May => BitSet::new(domain),
            Confluence::Must => full.clone(),
        };
        let mut fed = false;
        if at_boundary(b) {
            match confluence {
                Confluence::May => acc.union_with(boundary),
                Confluence::Must => acc.intersect_with(boundary),
            }
            fed = true;
        }
        for p in &feed[b] {
            match confluence {
                Confluence::May => acc.union_with(&derived[p.index()]),
                Confluence::Must => acc.intersect_with(&derived[p.index()]),
            }
            fed = true;
        }
        // A Must block with no incoming information keeps the vacuous
        // full set (it can never execute).
        if !fed && confluence == Confluence::Must {
            acc = full.clone();
        }

        let mut next = acc.clone();
        next.subtract(&kill[b]);
        next.union_with(&gen[b]);

        if acc != met[b] || next != derived[b] {
            met[b] = acc;
            if next != derived[b] {
                derived[b] = next;
                for d in &dependents[b] {
                    if !queued[d.index()] {
                        queued[d.index()] = true;
                        queue.push_back(d.index());
                    }
                }
            }
        }
    }

    match direction {
        Direction::Forward => Solution {
            on_entry: met,
            on_exit: derived,
        },
        Direction::Backward => Solution {
            on_entry: derived,
            on_exit: met,
        },
    }
}

/// Per-block variable read/write sets over the `Sym` domain.
///
/// `reads[b]` holds every variable some `Input` leaf of block `b` names
/// (block-entry reads); `writes[b]` holds every variable a `StoreVar`
/// root assigns (block-exit writes).
#[derive(Debug, Clone)]
pub struct BlockFacts {
    /// Variables read at each block's entry.
    pub reads: Vec<BitSet>,
    /// Variables written at each block's exit.
    pub writes: Vec<BitSet>,
}

/// Collect [`BlockFacts`] for every block of `f`.
pub fn block_facts(f: &Function) -> BlockFacts {
    let domain = f.syms.len();
    let mut reads = Vec::with_capacity(f.blocks.len());
    let mut writes = Vec::with_capacity(f.blocks.len());
    for (_, b) in f.iter() {
        let mut r = BitSet::new(domain);
        let mut w = BitSet::new(domain);
        for (_, node) in b.dag.iter() {
            match node.op {
                Op::Input => r.insert(node.sym.expect("input names a variable").index()),
                Op::StoreVar => w.insert(node.sym.expect("store names a variable").index()),
                _ => {}
            }
        }
        reads.push(r);
        writes.push(w);
    }
    BlockFacts { reads, writes }
}

/// Cross-block variable liveness (backward may-analysis over `Sym`s).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Variables live at each block's entry.
    pub live_in: Vec<BitSet>,
    /// Variables live at each block's exit.
    pub live_out: Vec<BitSet>,
}

/// Compute exact global liveness. `exit_live` seeds liveness at every
/// `return` — pass the full symbol universe to treat the data-memory
/// image as observable (the compiler's contract), or a narrower set for
/// analyses that only care about specific outputs.
pub fn liveness(f: &Function, exit_live: &BitSet) -> Liveness {
    let facts = block_facts(f);
    let s = solve(
        f,
        f.syms.len(),
        Direction::Backward,
        Confluence::May,
        &facts.reads,
        &facts.writes,
        exit_live,
    );
    Liveness {
        live_in: s.on_entry,
        live_out: s.on_exit,
    }
}

/// The full-universe exit-live set for [`liveness`]: every named
/// variable's final memory value is observable to the caller.
pub fn all_syms(f: &Function) -> BitSet {
    let mut s = BitSet::new(f.syms.len());
    for i in 0..f.syms.len() {
        s.insert(i);
    }
    s
}

/// Variables definitely assigned on every path (forward must-analysis).
///
/// `on_entry[b]` contains a variable iff every path from the function
/// entry to `b` assigns it (parameters count as assigned at entry). An
/// `Input` read of a variable not in this set may observe an
/// uninitialized memory cell.
pub fn definite_assignment(f: &Function) -> Solution {
    let facts = block_facts(f);
    let domain = f.syms.len();
    let mut boundary = BitSet::new(domain);
    for p in &f.params {
        boundary.insert(p.index());
    }
    let empty = vec![BitSet::new(domain); f.blocks.len()];
    solve(
        f,
        domain,
        Direction::Forward,
        Confluence::Must,
        &facts.writes,
        &empty,
        &boundary,
    )
}

/// Block dominance (forward must-analysis over the block domain).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `dom[b]` contains block `d` iff `d` dominates `b` (reflexive:
    /// every block dominates itself). Unreachable blocks converge to
    /// the full universe — mask with reachability before use.
    pub dom: Vec<BitSet>,
}

/// Compute dominator sets.
pub fn dominators(f: &Function) -> Dominators {
    let n = f.blocks.len();
    let gen: Vec<BitSet> = (0..n)
        .map(|b| {
            let mut s = BitSet::new(n);
            s.insert(b);
            s
        })
        .collect();
    let kill = vec![BitSet::new(n); n];
    let s = solve(
        f,
        n,
        Direction::Forward,
        Confluence::Must,
        &gen,
        &kill,
        &BitSet::new(n),
    );
    Dominators { dom: s.on_exit }
}

/// One definition site for [`reaching_defs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// The defined variable.
    pub sym: Sym,
    /// The defining block and `StoreVar` node, or `None` for the
    /// implicit entry definition of a parameter.
    pub site: Option<(BlockId, NodeId)>,
}

/// Reaching definitions (forward may-analysis over definition sites).
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// Every definition site: parameters first (in parameter order),
    /// then `StoreVar` roots in block then store order. Bit `i` of the
    /// solution sets refers to `sites[i]`.
    pub sites: Vec<DefSite>,
    /// Sites reaching each block's entry.
    pub reach_in: Vec<BitSet>,
    /// Sites reaching each block's exit.
    pub reach_out: Vec<BitSet>,
}

/// Compute reaching definitions.
pub fn reaching_defs(f: &Function) -> ReachingDefs {
    let mut sites: Vec<DefSite> = f
        .params
        .iter()
        .map(|&p| DefSite { sym: p, site: None })
        .collect();
    for (bid, b) in f.iter() {
        for &s in b.dag.stores() {
            let node = b.dag.node(s);
            if node.op == Op::StoreVar {
                sites.push(DefSite {
                    sym: node.sym.expect("store names a variable"),
                    site: Some((bid, s)),
                });
            }
        }
    }
    let domain = sites.len();

    let n = f.blocks.len();
    let mut gen = vec![BitSet::new(domain); n];
    let mut kill = vec![BitSet::new(domain); n];
    for (bid, b) in f.iter() {
        // The *last* store of each variable is the block's generated
        // definition; every site of a written variable is killed (gen is
        // re-added by the transfer function).
        let bi = bid.index();
        let mut last: Vec<(Sym, NodeId)> = Vec::new();
        for &s in b.dag.stores() {
            let node = b.dag.node(s);
            if node.op == Op::StoreVar {
                let sym = node.sym.expect("store names a variable");
                last.retain(|&(v, _)| v != sym);
                last.push((sym, s));
            }
        }
        for (i, site) in sites.iter().enumerate() {
            if let Some(&(_, node)) = last.iter().find(|&&(v, _)| v == site.sym) {
                kill[bi].insert(i);
                if site.site == Some((bid, node)) {
                    gen[bi].insert(i);
                }
            }
        }
    }

    let mut boundary = BitSet::new(domain);
    for i in 0..f.params.len() {
        boundary.insert(i);
    }
    let s = solve(
        f,
        domain,
        Direction::Forward,
        Confluence::May,
        &gen,
        &kill,
        &boundary,
    );
    ReachingDefs {
        sites,
        reach_in: s.on_entry,
        reach_out: s.on_exit,
    }
}

/// Def-use chains derived from [`reaching_defs`]: for every definition
/// site, the blocks whose entry reads can observe that definition.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// `uses[i]` lists, in block order, every block that reads
    /// `rd.sites[i].sym` with site `i` reaching its entry.
    pub uses: Vec<Vec<BlockId>>,
}

/// Build def-use chains from a reaching-definitions solution.
pub fn def_use(f: &Function, rd: &ReachingDefs) -> DefUse {
    let facts = block_facts(f);
    let mut uses = vec![Vec::new(); rd.sites.len()];
    for (bid, _) in f.iter() {
        let bi = bid.index();
        for (i, site) in rd.sites.iter().enumerate() {
            if facts.reads[bi].contains(site.sym.index()) && rd.reach_in[bi].contains(i) {
                uses[i].push(bid);
            }
        }
    }
    DefUse { uses }
}

/// Blocks reachable from the function entry, as a bit set over blocks.
pub fn reachable_blocks(f: &Function) -> BitSet {
    let mut seen = BitSet::new(f.blocks.len());
    let mut stack = vec![f.entry];
    seen.insert(f.entry.index());
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.successors() {
            if !seen.contains(s.index()) {
                seen.insert(s.index());
                stack.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    fn sym(f: &Function, name: &str) -> usize {
        f.syms.get(name).unwrap().index()
    }

    #[test]
    fn liveness_on_diamond() {
        let f = parse_function(
            "func f(a) {
                x = a + 1;
                y = a + 2;
                if (a > 0) goto t;
                z = x * 2;
                goto j;
            t:
                z = y * 3;
                goto j;
            j:
                return z;
            }",
        )
        .unwrap();
        // Narrow exit-live: only z is observable.
        let mut exit = BitSet::new(f.syms.len());
        exit.insert(sym(&f, "z"));
        let lv = liveness(&f, &exit);
        // x is live into the false arm only; y into the true arm only.
        assert!(lv.live_out[0].contains(sym(&f, "x")));
        assert!(lv.live_out[0].contains(sym(&f, "y")));
        assert!(lv.live_in[1].contains(sym(&f, "x")));
        assert!(!lv.live_in[1].contains(sym(&f, "y")));
        assert!(lv.live_in[2].contains(sym(&f, "y")));
        assert!(!lv.live_in[2].contains(sym(&f, "x")));
        // z is dead above its definitions.
        assert!(!lv.live_in[0].contains(sym(&f, "z")));
        assert!(lv.live_in[3].contains(sym(&f, "z")));
    }

    #[test]
    fn liveness_through_loop() {
        let f = parse_function(
            "func f(n) {
                s = 0;
                i = 0;
            head:
                if (i >= n) goto done;
                s = s + i;
                i = i + 1;
                goto head;
            done:
                return s;
            }",
        )
        .unwrap();
        let mut exit = BitSet::new(f.syms.len());
        exit.insert(sym(&f, "s"));
        let lv = liveness(&f, &exit);
        // The loop keeps s and i live around the back edge.
        for b in [1usize, 2] {
            assert!(lv.live_in[b].contains(sym(&f, "s")), "block {b}");
            assert!(lv.live_in[b].contains(sym(&f, "i")), "block {b}");
        }
        // i is dead after the loop exits.
        assert!(!lv.live_in[3].contains(sym(&f, "i")));
    }

    #[test]
    fn definite_assignment_misses_one_arm() {
        let f = parse_function(
            "func f(a) {
                if (a > 0) goto set;
                goto join;
            set:
                x = a * 2;
                goto join;
            join:
                y = x + 1;
                return y;
            }",
        )
        .unwrap();
        let da = definite_assignment(&f);
        let join = 3usize;
        assert!(da.on_entry[join].contains(sym(&f, "a")));
        assert!(
            !da.on_entry[join].contains(sym(&f, "x")),
            "x is only assigned on one path"
        );
    }

    #[test]
    fn dominators_of_diamond() {
        let f = parse_function(
            "func f(a) {
                if (a > 0) goto t;
                x = 1;
                goto j;
            t:
                x = 2;
                goto j;
            j:
                return x;
            }",
        )
        .unwrap();
        let d = dominators(&f);
        // Entry dominates everything; neither arm dominates the join.
        for b in 0..f.blocks.len() {
            assert!(d.dom[b].contains(0), "entry dominates block {b}");
        }
        assert!(!d.dom[3].contains(1));
        assert!(!d.dom[3].contains(2));
        assert!(d.dom[3].contains(3));
    }

    #[test]
    fn reaching_defs_and_chains() {
        let f = parse_function(
            "func f(a) {
                x = a + 1;
                goto next;
            next:
                x = 2;
                goto last;
            last:
                return x + a;
            }",
        )
        .unwrap();
        let rd = reaching_defs(&f);
        let du = def_use(&f, &rd);
        let x = f.syms.get("x").unwrap();
        // Two StoreVar sites for x plus the parameter site for a.
        let x_sites: Vec<usize> = rd
            .sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.sym == x)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(x_sites.len(), 2);
        // The block-0 definition is killed by block 1: nothing reads it.
        let first = x_sites
            .iter()
            .copied()
            .find(|&i| rd.sites[i].site.unwrap().0 == BlockId(0))
            .unwrap();
        let second = x_sites
            .iter()
            .copied()
            .find(|&i| rd.sites[i].site.unwrap().0 == BlockId(1))
            .unwrap();
        assert!(du.uses[first].is_empty(), "shadowed def has no uses");
        assert_eq!(du.uses[second], vec![BlockId(2)]);
        // The parameter a is read in the first and last blocks.
        let a_site = rd.sites.iter().position(|s| s.site.is_none()).unwrap();
        assert_eq!(du.uses[a_site], vec![BlockId(0), BlockId(2)]);
        assert!(!rd.reach_in[2].contains(first));
        assert!(rd.reach_in[2].contains(second));
    }

    #[test]
    fn solver_handles_unreachable_blocks() {
        let f = parse_function(
            "func f(a) {
                return a;
            dead:
                x = a + 1;
                return x;
            }",
        )
        .unwrap();
        let reach = reachable_blocks(&f);
        assert!(reach.contains(0));
        assert!(!reach.contains(1));
        // Must-analyses converge to the vacuous full set off the CFG.
        let da = definite_assignment(&f);
        assert_eq!(da.on_entry[1].count(), f.syms.len());
        // May-analyses stay empty there.
        let lv = liveness(&f, &BitSet::new(f.syms.len()));
        assert!(lv.live_out[1].is_empty());
    }

    #[test]
    fn entry_with_back_edge_meets_boundary() {
        // A loop whose back edge targets the entry block: definite
        // assignment must intersect the boundary with the looping path.
        let f = parse_function(
            "func f(n) {
            head:
                x = n - 1;
                if (x > 0) goto head;
                return x;
            }",
        )
        .unwrap();
        let da = definite_assignment(&f);
        assert!(da.on_entry[0].contains(sym(&f, "n")));
        assert!(
            !da.on_entry[0].contains(sym(&f, "x")),
            "first entry has no x yet"
        );
    }
}
