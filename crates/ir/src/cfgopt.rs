//! Control-flow-graph simplification.
//!
//! The AVIV back end generates code one basic block at a time, so bigger
//! blocks expose more instruction-level parallelism to the Split-Node DAG
//! (the same motivation as loop unrolling). These passes enlarge blocks
//! and clean the CFG:
//!
//! * [`remove_unreachable`] — drop blocks no path from the entry reaches;
//! * [`skip_empty_blocks`] — retarget edges that pass through empty
//!   forwarding blocks;
//! * [`merge_linear_chains`] — fuse `A → jump B` when `A` is `B`'s only
//!   predecessor, concatenating their DAGs;
//! * [`simplify_cfg`] — all of the above to a fixpoint.

use crate::dag::BlockDag;
use crate::opt::merge_sequential;
use crate::program::{BlockId, Function, Terminator};

/// Remove blocks unreachable from the entry; block ids are remapped.
/// Returns the number of blocks removed.
pub fn remove_unreachable(f: &mut Function) -> usize {
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = vec![f.entry];
    seen[f.entry.index()] = true;
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.successors() {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    if seen.iter().all(|&s| s) {
        return 0;
    }
    // Compact, building the id remap.
    let mut remap: Vec<Option<BlockId>> = vec![None; n];
    let mut kept = Vec::with_capacity(n);
    for (i, block) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if seen[i] {
            remap[i] = Some(BlockId(kept.len() as u32));
            kept.push(block);
        }
    }
    f.blocks = kept;
    let removed = n - f.blocks.len();
    let fix = |b: &mut BlockId| *b = remap[b.index()].expect("reachable successor");
    f.entry = remap[f.entry.index()].expect("entry is reachable");
    for block in &mut f.blocks {
        match &mut block.term {
            Terminator::Jump(t) => fix(t),
            Terminator::Branch {
                if_true, if_false, ..
            } => {
                fix(if_true);
                fix(if_false);
            }
            Terminator::Return(_) => {}
        }
    }
    removed
}

/// An "empty forwarding block": computes nothing and jumps elsewhere.
fn forwarding_target(f: &Function, b: BlockId) -> Option<BlockId> {
    let block = f.block(b);
    if !block.dag.is_empty() {
        return None;
    }
    match block.term {
        Terminator::Jump(t) if t != b => Some(t),
        _ => None,
    }
}

/// Retarget every edge that points at an empty forwarding block to that
/// block's destination (following chains). Returns the number of edges
/// retargeted. Dead forwarding blocks are left for
/// [`remove_unreachable`].
pub fn skip_empty_blocks(f: &mut Function) -> usize {
    // Resolve forwarding chains (with a visited set against cycles of
    // empty blocks, which are infinite loops and must be preserved).
    let n = f.blocks.len();
    let resolve = |f: &Function, start: BlockId| -> BlockId {
        let mut cur = start;
        let mut hops = 0usize;
        while let Some(next) = forwarding_target(f, cur) {
            cur = next;
            hops += 1;
            if hops > n {
                return start; // cycle of empty blocks: leave it alone
            }
        }
        cur
    };
    let mut changed = 0usize;
    for i in 0..n {
        let mut term = f.blocks[i].term.clone();
        let mut touched = false;
        match &mut term {
            Terminator::Jump(t) => {
                let r = resolve(f, *t);
                if r != *t {
                    *t = r;
                    touched = true;
                }
            }
            Terminator::Branch {
                if_true, if_false, ..
            } => {
                let rt = resolve(f, *if_true);
                if rt != *if_true {
                    *if_true = rt;
                    touched = true;
                }
                let rf = resolve(f, *if_false);
                if rf != *if_false {
                    *if_false = rf;
                    touched = true;
                }
            }
            Terminator::Return(_) => {}
        }
        if touched {
            f.blocks[i].term = term;
            changed += 1;
        }
    }
    // The entry itself may forward.
    let r = resolve(f, f.entry);
    if r != f.entry {
        f.entry = r;
        changed += 1;
    }
    changed
}

/// Fuse linear chains: when block `A` ends in `Jump(B)`, `B ≠ A` is not
/// the entry, and `A` is `B`'s only predecessor, concatenate `B`'s DAG
/// onto `A`'s and take over `B`'s terminator. Returns the number of
/// merges performed. Emptied blocks become unreachable (clean up with
/// [`remove_unreachable`]).
pub fn merge_linear_chains(f: &mut Function) -> usize {
    let mut merges = 0usize;
    loop {
        let preds = f.predecessors();
        let candidate = f.iter().find_map(|(a, block)| match block.term {
            Terminator::Jump(b) if b != a && b != f.entry && preds[b.index()].len() == 1 => {
                Some((a, b))
            }
            _ => None,
        });
        let Some((a, b)) = candidate else { break };
        // Merge b's DAG into a's.
        let b_dag = f.blocks[b.index()].dag.clone();
        let b_term = f.blocks[b.index()].term.clone();
        let mut merged = std::mem::replace(&mut f.blocks[a.index()].dag, BlockDag::new());
        let map = merge_sequential(&mut merged, &b_dag);
        f.blocks[a.index()].dag = merged;
        f.blocks[a.index()].term = match b_term {
            Terminator::Jump(t) => Terminator::Jump(t),
            Terminator::Branch {
                cond,
                if_true,
                if_false,
            } => Terminator::Branch {
                cond: map[cond.index()].expect("condition survives the merge"),
                if_true,
                if_false,
            },
            Terminator::Return(v) => Terminator::Return(
                v.map(|n| map[n.index()].expect("return value survives the merge")),
            ),
        };
        // Disconnect b (it is now unreachable).
        f.blocks[b.index()].dag = BlockDag::new();
        f.blocks[b.index()].term = Terminator::Return(None);
        merges += 1;
    }
    merges
}

/// Run all CFG simplifications to a fixpoint. Returns (edges retargeted,
/// blocks merged, blocks removed).
pub fn simplify_cfg(f: &mut Function) -> (usize, usize, usize) {
    let mut totals = (0usize, 0usize, 0usize);
    loop {
        let skipped = skip_empty_blocks(f);
        let merged = merge_linear_chains(f);
        let removed = remove_unreachable(f);
        totals.0 += skipped;
        totals.1 += merged;
        totals.2 += removed;
        if skipped == 0 && merged == 0 && removed == 0 {
            break;
        }
    }
    debug_assert!(f.validate().is_ok());
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_function;
    use crate::parser::parse_function;

    #[test]
    fn unreachable_blocks_are_removed() {
        let mut f = parse_function(
            "func f(a) {
                return a;
                x = a + 1;
            }",
        )
        .unwrap();
        assert_eq!(f.blocks.len(), 2);
        let removed = remove_unreachable(&mut f);
        assert_eq!(removed, 1);
        f.validate().unwrap();
        assert_eq!(run_function(&f, &[5]).unwrap().return_value, Some(5));
    }

    #[test]
    fn empty_forwarders_are_skipped() {
        // `mid` computes nothing and jumps on; the branch should retarget
        // straight to `end`.
        let src = "func f(a) {
            if (a > 0) goto mid;
            a = 0 - a;
        mid:
            goto end;
        end:
            return a;
        }";
        let mut f = parse_function(src).unwrap();
        let before_pos = run_function(&f, &[4]).unwrap().return_value;
        let before_neg = run_function(&f, &[-4]).unwrap().return_value;
        let (skipped, _, removed) = simplify_cfg(&mut f);
        assert!(skipped > 0);
        assert!(removed > 0);
        assert_eq!(run_function(&f, &[4]).unwrap().return_value, before_pos);
        assert_eq!(run_function(&f, &[-4]).unwrap().return_value, before_neg);
    }

    #[test]
    fn linear_chains_merge_into_bigger_blocks() {
        // Three straight-line blocks connected by jumps (a label after a
        // goto keeps them separate until merged).
        let src = "func f(a) {
            x = a + 1;
            goto second;
        second:
            y = x * 2;
            goto third;
        third:
            z = y - 3;
            return z;
        }";
        let mut f = parse_function(src).unwrap();
        assert_eq!(f.blocks.len(), 3);
        let before = run_function(&f, &[10]).unwrap();
        let (_, merged, removed) = simplify_cfg(&mut f);
        assert_eq!(merged, 2);
        assert_eq!(removed, 2);
        assert_eq!(f.blocks.len(), 1);
        let after = run_function(&f, &[10]).unwrap();
        assert_eq!(before.return_value, after.return_value);
        assert_eq!(after.return_value, Some(19));
        // The merged block carries the whole computation.
        assert!(f.blocks[0].dag.len() >= 7);
    }

    #[test]
    fn merging_respects_branch_conditions() {
        let src = "func f(a, n) {
            s = a;
            goto body;
        body:
            s = s * 2;
            if (s < n) goto body;
            return s;
        }";
        let mut f = parse_function(src).unwrap();
        // body has two predecessors (entry and itself): no merge.
        let (_, merged, _) = simplify_cfg(&mut f);
        assert_eq!(merged, 0);
        assert_eq!(run_function(&f, &[3, 20]).unwrap().return_value, Some(24));
    }

    #[test]
    fn loops_of_empty_blocks_are_preserved() {
        let mut f = parse_function("func f() { l: goto l; }").unwrap();
        let (skipped, merged, _) = simplify_cfg(&mut f);
        assert_eq!((skipped, merged), (0, 0));
        // Still an infinite loop.
        let mut i = crate::interp::Interpreter::new(&f);
        i.step_limit(10);
        assert!(i.run().is_err());
    }

    #[test]
    fn diamond_is_untouched() {
        let src = "func f(a) {
            if (a > 0) goto pos;
            r = 0 - a;
            goto done;
        pos:
            r = a;
        done:
            return r;
        }";
        let mut f = parse_function(src).unwrap();
        let blocks_before = f.blocks.len();
        simplify_cfg(&mut f);
        // `done` has two predecessors; nothing merges, nothing removed.
        assert_eq!(f.blocks.len(), blocks_before);
        assert_eq!(run_function(&f, &[-7]).unwrap().return_value, Some(7));
    }
}
