//! Basic-block expression DAGs.
//!
//! This is the structure the AVIV back end starts from: "the starting point
//! of the AVIV compiler is a number of basic block DAGs connected through
//! control flow information" (paper, §II). Nodes are operations; an edge
//! from a node to its operands points *downward*, matching the paper's
//! drawings where a node's operands are its descendants and leaves sit at
//! the bottom.
//!
//! Construction is value-numbered: inserting a structurally identical pure
//! node twice yields the same [`NodeId`], which gives common-subexpression
//! elimination for free (SUIF's expression-DAG behavior).

use crate::bitset::BitSet;
use crate::op::Op;
use crate::symbols::{Sym, SymbolTable};
use std::collections::HashMap;
use std::fmt;

/// Index of a node within one [`BlockDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operation node of a basic-block DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagNode {
    /// The machine-independent operation.
    pub op: Op,
    /// Operand nodes, in operation order.
    pub args: Vec<NodeId>,
    /// Constant value for [`Op::Const`] leaves.
    pub imm: Option<i64>,
    /// Variable name for [`Op::Input`] leaves and [`Op::StoreVar`] roots.
    pub sym: Option<Sym>,
}

/// An expression DAG for one basic block.
///
/// Roots are the nodes whose values escape the block: explicit stores plus
/// any values registered live-out via [`BlockDag::mark_live_out`].
#[derive(Debug, Clone, Default)]
pub struct BlockDag {
    nodes: Vec<DagNode>,
    /// Store roots, in program order (order matters for memory semantics).
    stores: Vec<NodeId>,
    /// Non-store nodes whose value must survive the block, with the
    /// variable each one defines.
    live_outs: Vec<(Sym, NodeId)>,
    /// Memory serialization edges `(earlier, later)`: the later node must
    /// not be scheduled before the earlier one. The front end adds these
    /// conservatively between dynamic memory operations in program order.
    mem_deps: Vec<(NodeId, NodeId)>,
    /// Value-numbering table for pure nodes.
    vn: HashMap<VnKey, NodeId>,
}

/// Value-numbering key: operation, canonicalized operands, immediate,
/// and symbol.
type VnKey = (Op, Vec<NodeId>, Option<i64>, Option<Sym>);

impl BlockDag {
    /// Create an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (the paper's "Original DAG #Nodes" column counts
    /// exactly this).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &DagNode {
        &self.nodes[id.index()]
    }

    /// Iterate over `(NodeId, &DagNode)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &DagNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The store roots in program order.
    pub fn stores(&self) -> &[NodeId] {
        &self.stores
    }

    /// Values that must survive the block as `(variable, defining node)`.
    pub fn live_outs(&self) -> &[(Sym, NodeId)] {
        &self.live_outs
    }

    /// All roots: stores then live-outs.
    pub fn roots(&self) -> Vec<NodeId> {
        let mut r = self.stores.clone();
        r.extend(self.live_outs.iter().map(|&(_, n)| n));
        r
    }

    fn push(&mut self, node: DagNode) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Insert a constant leaf (value-numbered).
    pub fn add_const(&mut self, value: i64) -> NodeId {
        self.add_node(Op::Const, &[], Some(value), None)
    }

    /// Insert a named input leaf (value-numbered).
    pub fn add_input(&mut self, sym: Sym) -> NodeId {
        self.add_node(Op::Input, &[], None, Some(sym))
    }

    /// Insert a pure operation node (value-numbered: structurally identical
    /// pure nodes share one id — this is the front end's CSE).
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` does not match the operation arity.
    pub fn add_op(&mut self, op: Op, args: &[NodeId]) -> NodeId {
        assert!(!op.is_store(), "use add_store/add_store_var for stores");
        self.add_node(op, args, None, None)
    }

    fn add_node(&mut self, op: Op, args: &[NodeId], imm: Option<i64>, sym: Option<Sym>) -> NodeId {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op}");
        for a in args {
            assert!(a.index() < self.nodes.len(), "operand {a} out of range");
        }
        // Canonicalize commutative operand order so `a+b` and `b+a` hit the
        // same value number.
        let mut key_args = args.to_vec();
        if op.is_commutative() && key_args.len() >= 2 && key_args[0] > key_args[1] {
            key_args.swap(0, 1);
        }
        let key = (op, key_args.clone(), imm, sym);
        if let Some(&id) = self.vn.get(&key) {
            return id;
        }
        let id = self.push(DagNode {
            op,
            args: key_args,
            imm,
            sym,
        });
        self.vn.insert(key, id);
        id
    }

    /// Insert a store to a dynamically addressed location. Stores are never
    /// value-numbered (two stores are two effects).
    pub fn add_store(&mut self, addr: NodeId, value: NodeId) -> NodeId {
        let id = self.push(DagNode {
            op: Op::Store,
            args: vec![addr, value],
            imm: None,
            sym: None,
        });
        self.stores.push(id);
        id
    }

    /// Insert a store of `value` to the named variable `sym`.
    pub fn add_store_var(&mut self, sym: Sym, value: NodeId) -> NodeId {
        let id = self.push(DagNode {
            op: Op::StoreVar,
            args: vec![value],
            imm: None,
            sym: Some(sym),
        });
        self.stores.push(id);
        id
    }

    /// Record that `node`'s value defines variable `sym` past the end of
    /// the block (e.g. the condition consumed by the block terminator).
    pub fn mark_live_out(&mut self, sym: Sym, node: NodeId) {
        self.live_outs.push((sym, node));
    }

    /// Add a memory serialization edge: `later` must execute after
    /// `earlier`. Both should be memory operations ([`Op::Load`] /
    /// [`Op::Store`]).
    ///
    /// # Panics
    ///
    /// Panics unless `earlier < later` (insertion order is program order).
    pub fn add_mem_dep(&mut self, earlier: NodeId, later: NodeId) {
        assert!(earlier < later, "mem dep must follow insertion order");
        self.mem_deps.push((earlier, later));
    }

    /// Memory serialization edges as `(earlier, later)` pairs.
    pub fn mem_deps(&self) -> &[(NodeId, NodeId)] {
        &self.mem_deps
    }

    /// Drop all live-out registrations (used by loop unrolling to discard
    /// an intermediate iteration's exit condition).
    pub fn clear_live_outs(&mut self) {
        self.live_outs.clear();
    }

    /// Rewrite the value of an existing [`Op::Const`] leaf in place,
    /// keeping the value-numbering table consistent. Returns `false`
    /// (and changes nothing) when `id` is not a constant node.
    ///
    /// This is the one sanctioned structural edit on a built DAG; the
    /// incremental-compilation tests use it to model "the user changed a
    /// literal in one block" without rebuilding the whole function.
    pub fn set_const_value(&mut self, id: NodeId, value: i64) -> bool {
        let Some(node) = self.nodes.get_mut(id.index()) else {
            return false;
        };
        if node.op != Op::Const {
            return false;
        }
        let old = node.imm;
        node.imm = Some(value);
        let old_key = (Op::Const, Vec::new(), old, None);
        if self.vn.get(&old_key) == Some(&id) {
            self.vn.remove(&old_key);
        }
        self.vn
            .entry((Op::Const, Vec::new(), Some(value), None))
            .or_insert(id);
        true
    }

    /// Consumers of each node: `uses[n]` lists the nodes having `n` as an
    /// operand (each consumer listed once per distinct edge position).
    pub fn uses(&self) -> Vec<Vec<NodeId>> {
        let mut uses = vec![Vec::new(); self.nodes.len()];
        for (id, n) in self.iter() {
            for &a in &n.args {
                uses[a.index()].push(id);
            }
        }
        uses
    }

    /// Nodes in a topological order with operands before consumers
    /// (ascending ids already satisfy this because operands must exist
    /// before insertion, but this is the explicit contract).
    pub fn topo_order(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32).map(NodeId).collect()
    }

    /// Longest-path level of each node measured from the *top* (roots have
    /// level 0; an operand's level exceeds every consumer's).
    ///
    /// Nodes unreachable from any root get the level they would have if
    /// they were roots themselves.
    pub fn levels_from_top(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        // Iterate ids descending: consumers have larger ids than operands
        // never holds in general? It does: operands are inserted first, so
        // consumer id > operand id. Walk consumers first (descending).
        for i in (0..self.nodes.len()).rev() {
            let l = level[i];
            for &a in &self.nodes[i].args {
                level[a.index()] = level[a.index()].max(l + 1);
            }
        }
        level
    }

    /// Longest-path level of each node measured from the *bottom* (leaves
    /// have level 0).
    pub fn levels_from_bottom(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for i in 0..self.nodes.len() {
            let l = self.nodes[i]
                .args
                .iter()
                .map(|a| level[a.index()] + 1)
                .max()
                .unwrap_or(0);
            level[i] = l;
        }
        level
    }

    /// Per-node descendant sets: `desc[n]` contains every node that must
    /// execute before `n` — everything reachable through operand edges plus
    /// memory serialization edges (excluding `n` itself). Two nodes have a
    /// directed path between them iff one is in the other's set.
    pub fn descendants(&self) -> Vec<BitSet> {
        let n = self.nodes.len();
        // Group serialization predecessors by the later node.
        let mut extra: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(earlier, later) in &self.mem_deps {
            extra[later.index()].push(earlier);
        }
        let mut desc = vec![BitSet::new(n); n];
        for i in 0..n {
            // Operands and serialization predecessors have smaller ids, so
            // their sets are already complete.
            let mut acc = BitSet::new(n);
            for a in self.nodes[i].args.iter().chain(extra[i].iter()) {
                acc.insert(a.index());
                acc.union_with(&desc[a.index()]);
            }
            desc[i] = acc;
        }
        desc
    }

    /// True if there is a directed dependency path between `a` and `b`
    /// (in either direction).
    pub fn dependent(&self, desc: &[BitSet], a: NodeId, b: NodeId) -> bool {
        desc[a.index()].contains(b.index()) || desc[b.index()].contains(a.index())
    }

    /// Structural validation: arities, operand ranges, acyclicity (implied
    /// by id ordering), store bookkeeping.
    pub fn validate(&self) -> Result<(), String> {
        for (id, n) in self.iter() {
            if n.args.len() != n.op.arity() {
                return Err(format!("{id}: {} has {} args", n.op, n.args.len()));
            }
            for &a in &n.args {
                if a.index() >= self.nodes.len() {
                    return Err(format!("{id}: operand {a} out of range"));
                }
                if a >= id {
                    return Err(format!("{id}: operand {a} does not precede node"));
                }
                if self.nodes[a.index()].op.is_store() {
                    return Err(format!("{id}: operand {a} is a store"));
                }
            }
            match n.op {
                Op::Const if n.imm.is_none() => return Err(format!("{id}: const without imm")),
                Op::Input | Op::StoreVar if n.sym.is_none() => {
                    return Err(format!("{id}: {} without sym", n.op))
                }
                _ => {}
            }
        }
        for &s in &self.stores {
            if !self.nodes[s.index()].op.is_store() {
                return Err(format!("store list entry {s} is not a store"));
            }
        }
        for &(_, n) in &self.live_outs {
            if self.nodes[n.index()].op.is_store() {
                return Err(format!("live-out {n} is a store"));
            }
        }
        for &(a, b) in &self.mem_deps {
            if a >= b || b.index() >= self.nodes.len() {
                return Err(format!("invalid mem dep {a} -> {b}"));
            }
        }
        Ok(())
    }

    /// Count of operation (non-leaf) nodes.
    pub fn op_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.op.is_leaf()).count()
    }

    /// Render the DAG as indented text (used by the figures binary to
    /// regenerate the paper's Fig. 2).
    pub fn render(&self, syms: &SymbolTable) -> String {
        let mut out = String::new();
        let uses = self.uses();
        for (id, n) in self.iter() {
            let desc = match n.op {
                Op::Const => format!("const {}", n.imm.unwrap()),
                Op::Input => format!("input {}", syms.name(n.sym.unwrap())),
                Op::StoreVar => format!("storev {} <- {}", syms.name(n.sym.unwrap()), n.args[0]),
                _ => {
                    let args: Vec<String> = n
                        .args
                        .iter()
                        .map(std::string::ToString::to_string)
                        .collect();
                    format!("{} {}", n.op, args.join(", "))
                }
            };
            let role = if self.stores.contains(&id) {
                " [root:store]"
            } else if self.live_outs.iter().any(|&(_, r)| r == id) {
                " [root:live-out]"
            } else if uses[id.index()].is_empty() {
                " [dead]"
            } else {
                ""
            };
            out.push_str(&format!("{id}: {desc}{role}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (BlockDag, SymbolTable) {
        // The paper's Fig. 2-style block:  out = (a + b) * c - (a + b)
        let mut syms = SymbolTable::new();
        let (a, b, c, out) = (
            syms.intern("a"),
            syms.intern("b"),
            syms.intern("c"),
            syms.intern("out"),
        );
        let mut dag = BlockDag::new();
        let na = dag.add_input(a);
        let nb = dag.add_input(b);
        let nc = dag.add_input(c);
        let sum = dag.add_op(Op::Add, &[na, nb]);
        let prod = dag.add_op(Op::Mul, &[sum, nc]);
        let diff = dag.add_op(Op::Sub, &[prod, sum]);
        dag.add_store_var(out, diff);
        (dag, syms)
    }

    #[test]
    fn value_numbering_dedups_pure_nodes() {
        let (mut dag, mut syms) = sample();
        let a = syms.intern("a");
        let b = syms.intern("b");
        let na = dag.add_input(a);
        let nb = dag.add_input(b);
        let len_before = dag.len();
        let sum_again = dag.add_op(Op::Add, &[na, nb]);
        assert_eq!(dag.len(), len_before, "duplicate add must be CSE'd");
        // Commutative canonicalization: b + a hits the same node.
        let sum_swapped = dag.add_op(Op::Add, &[nb, na]);
        assert_eq!(sum_again, sum_swapped);
    }

    #[test]
    fn stores_are_never_merged() {
        let (mut dag, mut syms) = sample();
        let out2 = syms.intern("out2");
        let v = dag.add_const(1);
        let s1 = dag.add_store_var(out2, v);
        let s2 = dag.add_store_var(out2, v);
        assert_ne!(s1, s2);
        assert_eq!(dag.stores().len(), 3);
    }

    #[test]
    fn levels_match_structure() {
        let (dag, _) = sample();
        let top = dag.levels_from_top();
        let bot = dag.levels_from_bottom();
        // storev root: top level 0; inputs have bottom level 0.
        let store = *dag.stores().first().unwrap();
        assert_eq!(top[store.index()], 0);
        for (id, n) in dag.iter() {
            if n.op.is_leaf() {
                assert_eq!(bot[id.index()], 0, "{id} is a leaf");
                assert!(top[id.index()] > 0);
            }
        }
        // a is used by add (depth 3 from store) — its top level is the
        // longest path: store(0) -> sub(1) -> mul(2) -> add(3) -> a(4).
        assert_eq!(top.iter().copied().max(), Some(4));
    }

    #[test]
    fn descendants_capture_paths() {
        let (dag, _) = sample();
        let desc = dag.descendants();
        let store = *dag.stores().first().unwrap();
        // The store reaches everything.
        assert_eq!(desc[store.index()].count(), dag.len() - 1);
        // Leaves reach nothing.
        for (id, n) in dag.iter() {
            if n.op.is_leaf() {
                assert!(desc[id.index()].is_empty());
            }
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        let (dag, _) = sample();
        dag.validate().unwrap();
        assert_eq!(dag.op_node_count(), 4); // add, mul, sub, storev
    }

    #[test]
    fn render_mentions_all_nodes() {
        let (dag, syms) = sample();
        let text = dag.render(&syms);
        for (id, _) in dag.iter() {
            assert!(text.contains(&id.to_string()));
        }
        assert!(text.contains("[root:store]"));
    }
}
