//! Machine-independent optimizations.
//!
//! The paper's front end "performs machine independent optimizations such
//! as loop unrolling and other transformations that extract machine
//! independent parallelism" (§II). This module provides the equivalents:
//!
//! * [`fold_constants`] — constant folding + dead-node elimination,
//! * [`prune_dead_stores`] — global dead variable-store elimination,
//! * [`eliminate_dead_code`] — the fixpoint of store + node elimination
//!   driven by the [`crate::dataflow`] liveness solver,
//! * [`unroll_self_loop`] — merges `k` iterations of a do-while self-loop
//!   into one bigger basic block (the transformation behind the paper's
//!   "loops that have been unrolled twice" examples),
//! * [`merge_sequential`] — the block-DAG concatenation primitive used by
//!   unrolling.

use crate::dag::{BlockDag, NodeId};
use crate::op::Op;
use crate::program::{BlockId, Function, Terminator};
use crate::symbols::Sym;
use std::collections::{HashMap, HashSet};

/// Rebuild every block with constant folding and dead-node elimination;
/// terminator node references are remapped. Returns the number of nodes
/// removed across the function.
pub fn fold_constants(f: &mut Function) -> usize {
    let mut removed = 0usize;
    for block in &mut f.blocks {
        let (new_dag, map) = rebuild(&block.dag, true);
        removed += block.dag.len().saturating_sub(new_dag.len());
        remap_terminator(&mut block.term, &map);
        block.dag = new_dag;
    }
    removed
}

/// Remove `StoreVar` roots whose variable is never read afterwards on any
/// path and is not in `observable` (variables whose final value the caller
/// inspects — typically the function outputs). Returns the number of
/// stores removed.
///
/// Liveness comes from the global solver ([`crate::dataflow::liveness`])
/// with `observable` as the exit-live seed. This is one round of
/// [`eliminate_dead_code`]; call that instead to also clean up the value
/// nodes the removed stores kept alive.
pub fn prune_dead_stores(f: &mut Function, observable: &[Sym]) -> usize {
    dead_code_round(f, observable).0
}

/// Global dead-code elimination to a fixpoint: drops `StoreVar` roots of
/// variables that are rewritten on every path before any read (and are
/// not in `observable`), plus every node no surviving root reaches.
/// Returns the total number of DAG nodes removed.
///
/// Semantics-preserving whenever `observable` lists every variable whose
/// final memory value the caller may inspect: only *shadowed* stores are
/// removed, so the data-memory image at exit is unchanged. The codegen
/// pipeline calls this with the full symbol table.
pub fn eliminate_dead_code(f: &mut Function, observable: &[Sym]) -> usize {
    let mut total = 0usize;
    loop {
        // Removing a store can kill the last read of another variable, so
        // iterate until the liveness solution stops shrinking.
        let (_, nodes) = dead_code_round(f, observable);
        if nodes == 0 {
            return total;
        }
        total += nodes;
    }
}

/// One liveness-then-rebuild round shared by [`prune_dead_stores`] and
/// [`eliminate_dead_code`]. Returns `(stores_removed, nodes_removed)`.
fn dead_code_round(f: &mut Function, observable: &[Sym]) -> (usize, usize) {
    let mut exit_live = crate::bitset::BitSet::new(f.syms.len());
    for s in observable {
        exit_live.insert(s.index());
    }
    let lv = crate::dataflow::liveness(f, &exit_live);

    let mut stores_removed = 0usize;
    let mut nodes_removed = 0usize;
    for (i, block) in f.blocks.iter_mut().enumerate() {
        let live_out = &lv.live_out[i];
        let (new_dag, map) = rebuild_filtered(&block.dag, false, |node| {
            node.op != Op::StoreVar || live_out.contains(node.sym.unwrap().index())
        });
        if new_dag.len() == block.dag.len() {
            continue;
        }
        stores_removed += block
            .dag
            .stores()
            .len()
            .saturating_sub(new_dag.stores().len());
        nodes_removed += block.dag.len() - new_dag.len();
        remap_terminator(&mut block.term, &map);
        block.dag = new_dag;
    }
    (stores_removed, nodes_removed)
}

/// Unroll the self-loop at `block` by `factor`, merging the copies into a
/// single larger basic block and dropping the intermediate exit tests.
///
/// The block must end in `Branch { if_true == block }` or
/// `Branch { if_false == block }` (a do-while loop). **Caller contract:**
/// the loop's trip count must always be a positive multiple of `factor`,
/// otherwise behavior changes — this matches how unrolling is used to
/// prepare the paper's benchmark blocks.
///
/// # Errors
///
/// Returns `Err` if the block is not a self-loop of the expected shape.
pub fn unroll_self_loop(f: &mut Function, block: BlockId, factor: usize) -> Result<(), String> {
    if factor < 2 {
        return Ok(());
    }
    let b = f.block(block);
    let (cond, back_is_true, exit) = match b.term {
        Terminator::Branch {
            cond,
            if_true,
            if_false,
        } if if_true == block => (cond, true, if_false),
        Terminator::Branch {
            cond,
            if_true,
            if_false,
        } if if_false == block => (cond, false, if_true),
        _ => return Err(format!("{block} is not a self-loop")),
    };
    let body = b.dag.clone();
    let mut merged = body.clone();
    let mut cond_map: Vec<Option<NodeId>> =
        (0..merged.len() as u32).map(|i| Some(NodeId(i))).collect();
    for _ in 1..factor {
        // The accumulated block's live-outs are the previous iteration's
        // exit condition — the whole point of unrolling is to drop those
        // intermediate tests.
        merged.clear_live_outs();
        let map = merge_sequential(&mut merged, &body);
        cond_map = map;
    }
    let new_cond = cond_map[cond.index()]
        .ok_or_else(|| "loop condition eliminated during merge".to_string())?;
    let block_mut = &mut f.blocks[block.index()];
    block_mut.dag = merged;
    block_mut.term = if back_is_true {
        Terminator::Branch {
            cond: new_cond,
            if_true: block,
            if_false: exit,
        }
    } else {
        Terminator::Branch {
            cond: new_cond,
            if_true: exit,
            if_false: block,
        }
    };
    Ok(())
}

/// Append `second`'s computation after `first`'s, resolving `second`'s
/// `Input(v)` leaves to the value `first` stores to `v` (when it does).
/// `first` keeps only the *final* `StoreVar` per variable; memory
/// operations of the two halves are serialized. Returns the node map from
/// `second`'s ids to merged ids (`None` for dropped stores).
///
/// Both DAGs must use the same symbol table — [`Sym`] ids are compared
/// directly (this holds for any two blocks of one [`Function`]).
pub fn merge_sequential(first: &mut BlockDag, second: &BlockDag) -> Vec<Option<NodeId>> {
    // Final binding of each variable stored by `first`.
    let mut binding: HashMap<Sym, NodeId> = HashMap::new();
    for &s in first.stores() {
        let node = first.node(s);
        if node.op == Op::StoreVar {
            binding.insert(node.sym.unwrap(), node.args[0]);
        }
    }
    // Rebuild `first` without StoreVars that `second` overwrites — the
    // merged block stores only final values. A StoreVar survives when
    // `second` does not store the same variable. The dropped stores'
    // values stay alive as extra roots: `second` reads them as its entry
    // bindings.
    let second_stores: HashSet<Sym> = second
        .stores()
        .iter()
        .filter_map(|&s| {
            let n = second.node(s);
            (n.op == Op::StoreVar).then(|| n.sym.unwrap())
        })
        .collect();
    let carried: Vec<NodeId> = binding.values().copied().collect();
    let (mut merged, first_map) = rebuild_filtered_with_roots(
        first,
        false,
        |node| !(node.op == Op::StoreVar && second_stores.contains(&node.sym.unwrap())),
        &carried,
    );
    let binding: HashMap<Sym, NodeId> = binding
        .into_iter()
        .filter_map(|(s, n)| first_map[n.index()].map(|m| (s, m)))
        .collect();

    // Memory chain ends of the rebuilt first half.
    let last_mem_first = (0..merged.len() as u32)
        .map(NodeId)
        .rfind(|&id| matches!(merged.node(id).op, Op::Load | Op::Store));

    // Copy `second`, resolving inputs through `binding`.
    let mut map: Vec<Option<NodeId>> = vec![None; second.len()];
    let mut first_mem_second: Option<NodeId> = None;
    let mut mem_prev: Option<NodeId> = None;
    for (id, node) in second.iter() {
        let new_id = match node.op {
            Op::Input => {
                let sym = node.sym.unwrap();
                match binding.get(&sym) {
                    Some(&n) => n,
                    None => merged.add_input(sym),
                }
            }
            Op::Const => merged.add_const(node.imm.unwrap()),
            Op::Store => {
                let args: Vec<NodeId> = node.args.iter().map(|a| map[a.index()].unwrap()).collect();
                merged.add_store(args[0], args[1])
            }
            Op::StoreVar => {
                let v = map[node.args[0].index()].unwrap();
                merged.add_store_var(node.sym.unwrap(), v)
            }
            op => {
                let args: Vec<NodeId> = node.args.iter().map(|a| map[a.index()].unwrap()).collect();
                merged.add_op(op, &args)
            }
        };
        map[id.index()] = Some(new_id);
        if matches!(node.op, Op::Load | Op::Store) {
            if first_mem_second.is_none() {
                first_mem_second = Some(new_id);
            }
            if let Some(prev) = mem_prev {
                if prev < new_id {
                    merged.add_mem_dep(prev, new_id);
                }
            }
            mem_prev = Some(new_id);
        }
    }
    // Serialize the two halves' memory chains.
    if let (Some(a), Some(b)) = (last_mem_first, first_mem_second) {
        if a < b {
            merged.add_mem_dep(a, b);
        }
    }
    // Live-outs of `second` (e.g. its loop condition) carry over.
    for &(sym, n) in second.live_outs() {
        if let Some(m) = map[n.index()] {
            merged.mark_live_out(sym, m);
        }
    }
    *first = merged;
    map
}

/// Rebuild a DAG keeping only nodes reachable from roots, optionally
/// constant-folding. Returns the new DAG and the old→new node map.
fn rebuild(dag: &BlockDag, fold: bool) -> (BlockDag, Vec<Option<NodeId>>) {
    rebuild_filtered(dag, fold, |_| true)
}

/// Like [`rebuild`] but also dropping any node (and what only it kept
/// alive) for which `keep` returns false. `keep` is consulted for store
/// roots; value nodes are kept by reachability.
fn rebuild_filtered(
    dag: &BlockDag,
    fold: bool,
    keep: impl Fn(&crate::dag::DagNode) -> bool,
) -> (BlockDag, Vec<Option<NodeId>>) {
    rebuild_with(dag, fold, keep, &[], None)
}

/// [`rebuild_filtered`] with additional nodes forced live (used when a
/// removed store's value is still consumed by a following block merge).
fn rebuild_filtered_with_roots(
    dag: &BlockDag,
    fold: bool,
    keep: impl Fn(&crate::dag::DagNode) -> bool,
    extra_roots: &[NodeId],
) -> (BlockDag, Vec<Option<NodeId>>) {
    rebuild_with(dag, fold, keep, extra_roots, None)
}

/// A peephole rewriter consulted while rebuilding: given the output DAG so
/// far, an operation, and its (already remapped) operands, it may return
/// an existing node to use instead of creating the operation.
pub(crate) type Rewriter<'a> = &'a dyn Fn(&mut BlockDag, Op, &[NodeId]) -> Option<NodeId>;

/// The shared rebuild engine behind every DAG-rewriting pass.
pub(crate) fn rebuild_with(
    dag: &BlockDag,
    fold: bool,
    keep: impl Fn(&crate::dag::DagNode) -> bool,
    extra_roots: &[NodeId],
    rewrite: Option<Rewriter<'_>>,
) -> (BlockDag, Vec<Option<NodeId>>) {
    // Reachability from surviving stores + live-outs + extra roots.
    let mut survivors: Vec<NodeId> = dag
        .stores()
        .iter()
        .copied()
        .filter(|&s| keep(dag.node(s)))
        .collect();
    survivors.extend(dag.live_outs().iter().map(|&(_, n)| n));
    survivors.extend(extra_roots.iter().copied());
    let live = {
        // Treat the surviving roots as the reachability seed.
        let mut seen = HashSet::new();
        let mut stack = survivors.clone();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for &a in &dag.node(n).args {
                stack.push(a);
            }
            for &(earlier, later) in dag.mem_deps() {
                if later == n && !seen.contains(&earlier) {
                    stack.push(earlier);
                }
            }
        }
        seen
    };

    let mut out = BlockDag::new();
    let mut map: Vec<Option<NodeId>> = vec![None; dag.len()];
    for (id, node) in dag.iter() {
        if !live.contains(&id) {
            continue;
        }
        let new_id = match node.op {
            Op::Const => out.add_const(node.imm.unwrap()),
            Op::Input => out.add_input(node.sym.unwrap()),
            Op::Store => {
                let a = map[node.args[0].index()].unwrap();
                let v = map[node.args[1].index()].unwrap();
                out.add_store(a, v)
            }
            Op::StoreVar => {
                let v = map[node.args[0].index()].unwrap();
                out.add_store_var(node.sym.unwrap(), v)
            }
            op => {
                let args: Vec<NodeId> = node.args.iter().map(|a| map[a.index()].unwrap()).collect();
                let rewritten = rewrite.and_then(|r| r(&mut out, op, &args));
                if let Some(n) = rewritten {
                    n
                } else if fold && !matches!(op, Op::Load) {
                    let const_args: Option<Vec<i64>> = args
                        .iter()
                        .map(|&a| {
                            let n = out.node(a);
                            (n.op == Op::Const).then(|| n.imm.unwrap())
                        })
                        .collect();
                    if let Some(cv) = const_args {
                        out.add_const(op.eval(&cv))
                    } else {
                        out.add_op(op, &args)
                    }
                } else {
                    out.add_op(op, &args)
                }
            }
        };
        map[id.index()] = Some(new_id);
    }
    for &(earlier, later) in dag.mem_deps() {
        if let (Some(a), Some(b)) = (map[earlier.index()], map[later.index()]) {
            if a < b {
                out.add_mem_dep(a, b);
            }
        }
    }
    for &(sym, n) in dag.live_outs() {
        if let Some(m) = map[n.index()] {
            out.mark_live_out(sym, m);
        }
    }
    (out, map)
}

fn remap_terminator(term: &mut Terminator, map: &[Option<NodeId>]) {
    match term {
        Terminator::Branch { cond, .. } => {
            *cond = map[cond.index()].expect("branch condition eliminated");
        }
        Terminator::Return(Some(v)) => {
            *v = map[v.index()].expect("return value eliminated");
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_function;
    use crate::parser::parse_function;

    #[test]
    fn constant_folding_shrinks_and_preserves_semantics() {
        let src = "func f(a) { x = (2 + 3) * a; y = 4 * 5; z = x + y; return z; }";
        let mut f = parse_function(src).unwrap();
        let before = run_function(&f, &[7]).unwrap();
        let n_before = f.blocks[0].dag.len();
        let removed = fold_constants(&mut f);
        f.validate().unwrap();
        assert!(removed > 0);
        assert!(f.blocks[0].dag.len() < n_before);
        // y folds entirely to a constant 20.
        assert!(f.blocks[0]
            .dag
            .iter()
            .any(|(_, n)| n.op == Op::Const && n.imm == Some(20)));
        let after = run_function(&f, &[7]).unwrap();
        assert_eq!(before.return_value, after.return_value);
        assert_eq!(before.return_value, Some(5 * 7 + 20));
    }

    #[test]
    fn dead_store_pruning_respects_observability() {
        let src = "func f(a) { t = a * 3; u = t + 1; return u; }";
        let mut f = parse_function(src).unwrap();
        // With everything observable nothing is pruned.
        let all: Vec<Sym> = f.syms.iter().map(|(s, _)| s).collect();
        assert_eq!(prune_dead_stores(&mut f, &all), 0);
        // With only `u` observable, the stores of t (never read later) go.
        let u = f.syms.get("u").unwrap();
        let removed = prune_dead_stores(&mut f, &[u]);
        assert_eq!(removed, 1);
        f.validate().unwrap();
        let r = run_function(&f, &[5]).unwrap();
        assert_eq!(r.return_value, Some(16));
    }

    #[test]
    fn dead_store_pruning_keeps_cross_block_reads() {
        let src = "func f(a) {
            t = a + 1;
            goto next;
        next:
            return t * 2;
        }";
        let mut f = parse_function(src).unwrap();
        let removed = prune_dead_stores(&mut f, &[]);
        assert_eq!(removed, 0, "t is read in the next block");
        assert_eq!(run_function(&f, &[4]).unwrap().return_value, Some(10));
    }

    #[test]
    fn merge_sequential_is_composition() {
        // Two blocks of ONE function share a symbol table, which is the
        // merge_sequential contract.
        let f = parse_function(
            "func a(x) {
                y = x + 1;
                x = y * 2;
                goto second;
            second:
                z = x * x;
                x = z - 1;
            }",
        )
        .unwrap();
        let mut merged = f.blocks[0].dag.clone();
        merge_sequential(&mut merged, &f.blocks[1].dag);
        merged.validate().unwrap();
        // Build a single-block function around the merged DAG.
        let mut mf = f.clone();
        mf.blocks.truncate(1);
        mf.blocks[0].dag = merged;
        mf.blocks[0].term = Terminator::Return(None);
        mf.validate().unwrap();
        // x=3 -> y=4, x=8 -> z=64, x=63.
        let mut i = crate::interp::Interpreter::new(&mf);
        i.args(&[3]);
        i.run().unwrap();
        assert_eq!(i.read_var("y"), Some(4));
        assert_eq!(i.read_var("z"), Some(64));
        assert_eq!(i.read_var("x"), Some(63));
    }

    #[test]
    fn unroll_preserves_semantics_for_divisible_trips() {
        let src = "func sum(n) {
            s = 0;
            i = 0;
        head:
            s = s + i;
            i = i + 1;
            if (i < n) goto head;
            return s;
        }";
        let mut f = parse_function(src).unwrap();
        let before = run_function(&f, &[6]).unwrap();
        // `head` is block 1 and loops on itself.
        unroll_self_loop(&mut f, BlockId(1), 2).unwrap();
        f.validate().unwrap();
        let after = run_function(&f, &[6]).unwrap();
        assert_eq!(before.return_value, after.return_value);
        assert_eq!(after.return_value, Some(15));
        // Half as many loop iterations execute.
        assert!(after.blocks_executed < before.blocks_executed);
        // The unrolled DAG is bigger than the original body.
        assert!(f.blocks[1].dag.len() > 6);
    }

    #[test]
    fn unroll_rejects_non_loops() {
        let mut f = parse_function("func f(a) { return a; }").unwrap();
        assert!(unroll_self_loop(&mut f, BlockId(0), 2).is_err());
    }

    #[test]
    fn unroll_by_four() {
        let src = "func sum(n) {
            s = 0;
            i = 0;
        head:
            s = s + i * i;
            i = i + 1;
            if (i < n) goto head;
            return s;
        }";
        let mut f = parse_function(src).unwrap();
        unroll_self_loop(&mut f, BlockId(1), 4).unwrap();
        f.validate().unwrap();
        let r = run_function(&f, &[8]).unwrap();
        let expect: i64 = (0..8).map(|i| i * i).sum();
        assert_eq!(r.return_value, Some(expect));
    }
}
