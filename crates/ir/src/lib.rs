//! # aviv-ir — front-end substrate for the AVIV code generator
//!
//! Reproduction of the intermediate representation consumed by the AVIV
//! retargetable code generator (Hanono & Devadas, DAC 1998). The paper's
//! front end (SUIF + SPAM) delivers "a number of basic block DAGs connected
//! through control flow information"; this crate provides exactly that:
//!
//! * [`Op`] — the machine-independent operation vocabulary,
//! * [`BlockDag`] — value-numbered basic-block expression DAGs,
//! * [`Function`] / [`BasicBlock`] / [`Terminator`] — the CFG,
//! * [`parse_function`] — a small three-address input language,
//! * [`Interpreter`] — the semantic oracle used for differential testing,
//! * [`dataflow`] — the global dataflow framework (liveness, reaching
//!   definitions, dominators, def-use chains) over the CFG,
//! * [`opt`] — machine-independent optimizations including the loop
//!   unrolling the paper uses to prepare its benchmark blocks,
//! * [`randdag`] — seeded random workloads for scaling experiments.
//!
//! ```
//! use aviv_ir::{parse_function, Interpreter};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let f = parse_function("func f(a, b) { x = a * b + 1; return x; }")?;
//! let result = Interpreter::new(&f).args(&[6, 7]).run()?;
//! assert_eq!(result.return_value, Some(43));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod cfgopt;
pub mod dag;
pub mod dataflow;
pub mod interp;
pub mod op;
pub mod opt;
pub mod parser;
pub mod printer;
pub mod program;
pub mod randdag;
pub mod simplify;
pub mod stablehash;
pub mod symbols;

pub use bitset::{BitMatrix, BitSet};
pub use dag::{BlockDag, DagNode, NodeId};
pub use interp::{eval_block_isolated, run_function, InterpError, InterpResult, Interpreter};
pub use op::Op;
pub use parser::{parse_function, ParseError};
pub use printer::to_source;
pub use program::{BasicBlock, BlockId, Function, MemLayout, Terminator};
pub use stablehash::{block_dag_hash, function_block_hashes, StableHasher};
pub use symbols::{Sym, SymbolTable};
