//! Stable structural hashing of IR for content-addressed caching.
//!
//! The compile service ([`crate`]'s consumers in `aviv` and `avivd`) keys
//! per-block plans on *content*: two blocks with the same operations,
//! operands, constants, and symbol bindings must hash equal, and any
//! structural difference must (with overwhelming probability) hash
//! different. The std `Hash`/`Hasher` pair is deliberately not used —
//! `DefaultHasher` is documented to vary across releases, and `HashMap`
//! iteration order would leak into any naive implementation. This module
//! hashes only explicitly ordered structure with a fixed algorithm
//! (FNV-1a, 64-bit), so a hash is reproducible for the lifetime of a
//! process and across processes of the same build.
//!
//! What a block hash covers (and why):
//!
//! * every DAG node in id order — operation, operand ids, immediate,
//!   and for named leaves/roots both the symbol **id** and its **name**
//!   (a cached plan embeds `Sym` ids, so a hit must guarantee the ids
//!   resolve to the same names);
//! * the store-root order (memory semantics), live-out registrations,
//!   and memory serialization edges.
//!
//! What it deliberately excludes: anything about *other* blocks, the
//! rest of the symbol table, or the function's CFG — so editing one
//! block invalidates exactly that block's cache entries.

use crate::dag::BlockDag;
use crate::program::Function;
use crate::symbols::SymbolTable;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A tiny FNV-1a 64-bit hasher with a fixed, documented algorithm.
///
/// Unlike [`std::hash::Hasher`] implementations, the output is part of
/// this crate's behavioral contract: it depends only on the byte
/// sequence fed in, never on platform, process, or standard-library
/// version.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Start a fresh hash.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feed a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed an `i64` (little-endian bytes).
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed a `usize` widened to 64 bits.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feed a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Feed a bool.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hash a string with the same algorithm as [`StableHasher`].
pub fn hash_str(s: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish()
}

/// Content hash of one basic-block DAG, including the names bound to
/// every symbol it mentions (see the module docs for the exact coverage).
///
/// Two calls agree iff the blocks are structurally identical and their
/// symbol references resolve to the same `(id, name)` pairs — which is
/// exactly the precondition for reusing a cached block plan.
///
/// # Panics
///
/// Panics if the DAG references a symbol not present in `syms` (the same
/// contract as [`SymbolTable::name`]).
pub fn block_dag_hash(dag: &BlockDag, syms: &SymbolTable) -> u64 {
    let mut h = StableHasher::new();
    h.write_usize(dag.len());
    for (_, n) in dag.iter() {
        h.write_u64(n.op as u64);
        h.write_usize(n.args.len());
        for a in &n.args {
            h.write_usize(a.index());
        }
        match n.imm {
            Some(v) => {
                h.write_bool(true);
                h.write_i64(v);
            }
            None => h.write_bool(false),
        }
        match n.sym {
            Some(s) => {
                h.write_bool(true);
                h.write_usize(s.index());
                h.write_str(syms.name(s));
            }
            None => h.write_bool(false),
        }
    }
    h.write_usize(dag.stores().len());
    for s in dag.stores() {
        h.write_usize(s.index());
    }
    h.write_usize(dag.live_outs().len());
    for &(sym, node) in dag.live_outs() {
        h.write_usize(sym.index());
        h.write_str(syms.name(sym));
        h.write_usize(node.index());
    }
    h.write_usize(dag.mem_deps().len());
    for &(a, b) in dag.mem_deps() {
        h.write_usize(a.index());
        h.write_usize(b.index());
    }
    h.finish()
}

/// Per-block content hashes for a whole function, in block order.
pub fn function_block_hashes(f: &Function) -> Vec<u64> {
    f.blocks
        .iter()
        .map(|b| block_dag_hash(&b.dag, &f.syms))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::parser::parse_function;
    use crate::printer::to_source;

    fn sample() -> Function {
        parse_function(
            "func f(a, b) { x = a * b + 1; if (x > 3) goto t; \
             y = x + 2; t: return x; }",
        )
        .unwrap()
    }

    #[test]
    fn hashes_are_deterministic_and_reparse_stable() {
        let f = sample();
        let h1 = function_block_hashes(&f);
        let h2 = function_block_hashes(&f);
        assert_eq!(h1, h2);
        // The serving cache hashes whatever the parser builds from request
        // text, so the load-bearing property is: parsing the same source
        // twice (fresh symbol tables each time) gives identical hashes.
        // (`to_source` output is a different-but-equivalent program — it
        // names temps, so it is NOT expected to hash like the original.)
        let src = to_source(&f);
        let g1 = parse_function(&src).unwrap();
        let g2 = parse_function(&src).unwrap();
        assert_eq!(function_block_hashes(&g1), function_block_hashes(&g2));
    }

    #[test]
    fn distinct_blocks_hash_distinct() {
        let f = sample();
        let h = function_block_hashes(&f);
        assert!(h.len() >= 2);
        for i in 0..h.len() {
            for j in i + 1..h.len() {
                assert_ne!(h[i], h[j], "blocks {i} and {j} collide");
            }
        }
    }

    #[test]
    fn constant_change_moves_the_hash() {
        let a = parse_function("func f(a) { x = a + 1; return x; }").unwrap();
        let b = parse_function("func f(a) { x = a + 2; return x; }").unwrap();
        assert_ne!(
            block_dag_hash(&a.blocks[0].dag, &a.syms),
            block_dag_hash(&b.blocks[0].dag, &b.syms)
        );
    }

    #[test]
    fn renamed_symbol_moves_the_hash() {
        let a = parse_function("func f(a) { x = a + 1; return x; }").unwrap();
        let b = parse_function("func f(a) { y = a + 1; return y; }").unwrap();
        assert_ne!(
            block_dag_hash(&a.blocks[0].dag, &a.syms),
            block_dag_hash(&b.blocks[0].dag, &b.syms)
        );
    }

    #[test]
    fn hasher_is_order_and_boundary_sensitive() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
        assert_eq!(hash_str("x"), hash_str("x"));
        assert_ne!(hash_str("x"), hash_str("y"));
    }

    #[test]
    fn set_const_value_changes_exactly_that_block() {
        let mut f = sample();
        let before = function_block_hashes(&f);
        // Find a const node in block 0 and retag it.
        let dag = &mut f.blocks[0].dag;
        let id = dag
            .iter()
            .find(|(_, n)| n.op == Op::Const)
            .map(|(id, _)| id)
            .unwrap();
        assert!(dag.set_const_value(id, 12345));
        let after = function_block_hashes(&f);
        assert_ne!(before[0], after[0]);
        assert_eq!(before[1..], after[1..]);
    }
}
