//! Machine-independent operations carried by DAG nodes.
//!
//! This is the vocabulary shared between the front end (SUIF-equivalent),
//! the machine description, and the code generator: the paper's ISDL
//! databases correlate target-processor operations with exactly this kind of
//! "SUIF basic operation" set (ADD, SUB, ...).

use std::fmt;

/// A machine-independent basic operation.
///
/// Arithmetic is two's-complement on `i64` with wrapping semantics; shifts
/// mask their amount to six bits; division by zero yields zero (embedded
/// DSP-style saturating environments differ, but the oracle and the
/// simulator agree on one semantics, which is all the reproduction needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// Integer constant leaf. Carries its value in [`crate::DagNode::imm`].
    Const,
    /// Named input variable leaf, resident in data memory at block entry.
    Input,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (x / 0 == 0).
    Div,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Left shift (amount masked to 6 bits).
    Shl,
    /// Arithmetic right shift (amount masked to 6 bits).
    Shr,
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement (the paper's COMPL).
    Compl,
    /// Absolute value.
    Abs,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// Multiply-accumulate `a * b + c`; only produced by complex-instruction
    /// matching, never by the front end.
    Mac,
    /// Load from a dynamically computed address: `mem[addr]`.
    Load,
    /// Store to a dynamically computed address: `mem[addr] = value`
    /// (operands are `[addr, value]`).
    Store,
    /// Store to a named variable: `name = value` for a live-out variable.
    StoreVar,
    /// Compare equal, producing 0 or 1.
    CmpEq,
    /// Compare not-equal, producing 0 or 1.
    CmpNe,
    /// Compare signed less-than, producing 0 or 1.
    CmpLt,
    /// Compare signed less-or-equal, producing 0 or 1.
    CmpLe,
    /// Compare signed greater-than, producing 0 or 1.
    CmpGt,
    /// Compare signed greater-or-equal, producing 0 or 1.
    CmpGe,
}

impl Op {
    /// Number of value operands the operation consumes.
    pub fn arity(self) -> usize {
        use Op::*;
        match self {
            Const | Input => 0,
            Neg | Compl | Abs | Load => 1,
            StoreVar => 1,
            Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Min | Max | Store | CmpEq
            | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe => 2,
            Mac => 3,
        }
    }

    /// True for the two leaf kinds ([`Op::Const`] and [`Op::Input`]).
    pub fn is_leaf(self) -> bool {
        matches!(self, Op::Const | Op::Input)
    }

    /// True for operations whose first two operands commute.
    pub fn is_commutative(self) -> bool {
        use Op::*;
        matches!(
            self,
            Add | Mul | And | Or | Xor | Min | Max | CmpEq | CmpNe | Mac
        )
    }

    /// True for the root-only store operations that anchor live-out values.
    pub fn is_store(self) -> bool {
        matches!(self, Op::Store | Op::StoreVar)
    }

    /// True for comparison operations producing a 0/1 flag value.
    pub fn is_compare(self) -> bool {
        use Op::*;
        matches!(self, CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe)
    }

    /// True for operations that produce a value usable by other nodes.
    pub fn produces_value(self) -> bool {
        !self.is_store()
    }

    /// Evaluate the operation on already-evaluated operands.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()` or if called on a leaf or
    /// memory operation (those are handled by the interpreter, which owns
    /// the environment).
    pub fn eval(self, args: &[i64]) -> i64 {
        use Op::*;
        assert_eq!(args.len(), self.arity(), "arity mismatch for {self}");
        match self {
            Add => args[0].wrapping_add(args[1]),
            Sub => args[0].wrapping_sub(args[1]),
            Mul => args[0].wrapping_mul(args[1]),
            Div => {
                if args[1] == 0 {
                    0
                } else {
                    args[0].wrapping_div(args[1])
                }
            }
            And => args[0] & args[1],
            Or => args[0] | args[1],
            Xor => args[0] ^ args[1],
            Shl => args[0].wrapping_shl((args[1] & 0x3f) as u32),
            Shr => args[0].wrapping_shr((args[1] & 0x3f) as u32),
            Neg => args[0].wrapping_neg(),
            Compl => !args[0],
            Abs => args[0].wrapping_abs(),
            Min => args[0].min(args[1]),
            Max => args[0].max(args[1]),
            Mac => args[0].wrapping_mul(args[1]).wrapping_add(args[2]),
            CmpEq => (args[0] == args[1]) as i64,
            CmpNe => (args[0] != args[1]) as i64,
            CmpLt => (args[0] < args[1]) as i64,
            CmpLe => (args[0] <= args[1]) as i64,
            CmpGt => (args[0] > args[1]) as i64,
            CmpGe => (args[0] >= args[1]) as i64,
            Const | Input | Load | Store | StoreVar => {
                panic!("{self} is not a pure value operation")
            }
        }
    }

    /// Lower-case mnemonic used by printers, the ISDL language, and the
    /// assembler.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Const => "const",
            Input => "input",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Neg => "neg",
            Compl => "compl",
            Abs => "abs",
            Min => "min",
            Max => "max",
            Mac => "mac",
            Load => "load",
            Store => "store",
            StoreVar => "storev",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            CmpGt => "cmpgt",
            CmpGe => "cmpge",
        }
    }

    /// Parse a mnemonic produced by [`Op::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Op> {
        use Op::*;
        Some(match s {
            "const" => Const,
            "input" => Input,
            "add" => Add,
            "sub" => Sub,
            "mul" => Mul,
            "div" => Div,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "shl" => Shl,
            "shr" => Shr,
            "neg" => Neg,
            "compl" | "not" => Compl,
            "abs" => Abs,
            "min" => Min,
            "max" => Max,
            "mac" => Mac,
            "load" => Load,
            "store" => Store,
            "storev" => StoreVar,
            "cmpeq" => CmpEq,
            "cmpne" => CmpNe,
            "cmplt" => CmpLt,
            "cmple" => CmpLe,
            "cmpgt" => CmpGt,
            "cmpge" => CmpGe,
            _ => return None,
        })
    }

    /// All operations a functional unit could plausibly implement: the pure
    /// computational ops (everything except leaves and stores).
    pub fn all_computational() -> &'static [Op] {
        use Op::*;
        &[
            Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Neg, Compl, Abs, Min, Max, Mac, CmpEq,
            CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
        ]
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        for &op in Op::all_computational() {
            let args = vec![7i64; op.arity()];
            // Must not panic for any computational op.
            let _ = op.eval(&args);
        }
    }

    #[test]
    fn mnemonic_round_trip() {
        use Op::*;
        for op in [
            Const, Input, Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Neg, Compl, Abs, Min, Max,
            Mac, Load, Store, StoreVar, CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
        ] {
            assert_eq!(Op::from_mnemonic(op.mnemonic()), Some(op), "{op}");
        }
        assert_eq!(Op::from_mnemonic("bogus"), None);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(Op::Div.eval(&[42, 0]), 0);
        assert_eq!(Op::Div.eval(&[42, 7]), 6);
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(Op::Shl.eval(&[1, 64]), 1); // 64 & 0x3f == 0
        assert_eq!(Op::Shl.eval(&[1, 3]), 8);
        assert_eq!(Op::Shr.eval(&[-8, 1]), -4); // arithmetic shift
    }

    #[test]
    fn compare_ops_produce_flags() {
        assert_eq!(Op::CmpLt.eval(&[1, 2]), 1);
        assert_eq!(Op::CmpLt.eval(&[2, 1]), 0);
        assert_eq!(Op::CmpGe.eval(&[2, 2]), 1);
    }

    #[test]
    fn mac_is_mul_plus_add() {
        assert_eq!(Op::Mac.eval(&[3, 4, 5]), 17);
    }

    #[test]
    fn commutativity_flags() {
        assert!(Op::Add.is_commutative());
        assert!(!Op::Sub.is_commutative());
        assert!(!Op::Shl.is_commutative());
    }
}
