//! Seeded random basic-block generation for scaling benchmarks and
//! property tests.
//!
//! The paper evaluates on "generic basic blocks that occur in DSP
//! application code"; this generator produces blocks with the same flavor
//! (arithmetic DAGs over a few inputs, a couple of stored results) at any
//! size, deterministically from a seed.

use crate::dag::{BlockDag, NodeId};
use crate::op::Op;
use crate::program::{BasicBlock, BlockId, Function, Terminator};
use crate::symbols::SymbolTable;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_block`].
#[derive(Debug, Clone)]
pub struct RandDagConfig {
    /// Number of operation nodes to generate (leaves excluded).
    pub n_ops: usize,
    /// Number of distinct input variables.
    pub n_inputs: usize,
    /// Operations to draw from (defaults to a DSP-ish mix).
    pub ops: Vec<Op>,
    /// Number of values stored to output variables (at least 1).
    pub n_outputs: usize,
    /// Bias toward recent nodes as operands (0.0 = uniform, 1.0 = chains).
    pub locality: f64,
    /// Probability that a fresh operand is a small constant instead of an
    /// existing value (exercises immediate-operand handling).
    pub const_prob: f64,
}

impl Default for RandDagConfig {
    fn default() -> Self {
        RandDagConfig {
            n_ops: 12,
            n_inputs: 4,
            ops: vec![Op::Add, Op::Sub, Op::Mul, Op::Add, Op::Mul, Op::Neg],
            n_outputs: 2,
            locality: 0.5,
            const_prob: 0.0,
        }
    }
}

/// Generate a single-block function from `seed`.
///
/// The block reads `n_inputs` parameters, computes `n_ops` operations, and
/// stores `n_outputs` results (the most recently computed values, so the
/// whole DAG stays live).
pub fn random_block(cfg: &RandDagConfig, seed: u64) -> Function {
    assert!(cfg.n_ops >= 1 && cfg.n_inputs >= 1 && cfg.n_outputs >= 1);
    assert!(!cfg.ops.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut syms = SymbolTable::new();
    let mut dag = BlockDag::new();

    let params: Vec<_> = (0..cfg.n_inputs)
        .map(|i| syms.intern(&format!("in{i}")))
        .collect();
    let mut pool: Vec<NodeId> = params.iter().map(|&p| dag.add_input(p)).collect();

    let locality = cfg.locality.clamp(0.0, 1.0);
    let pick = |rng: &mut StdRng, pool: &[NodeId]| -> NodeId {
        if pool.len() == 1 {
            return pool[0];
        }
        // Locality bias: with probability `locality` pick among the most
        // recent quarter of the pool, making chain-like DSP dataflow.
        pool[if rng.gen::<f64>() < locality {
            let lo = pool.len().saturating_sub((pool.len() / 4).max(1));
            rng.gen_range(lo..pool.len())
        } else {
            rng.gen_range(0..pool.len())
        }]
    };

    let const_prob = cfg.const_prob.clamp(0.0, 1.0);
    let mut made = 0usize;
    while made < cfg.n_ops {
        let op = *cfg.ops.choose(&mut rng).unwrap();
        let args: Vec<NodeId> = (0..op.arity())
            .map(|_| {
                if const_prob > 0.0 && rng.gen::<f64>() < const_prob {
                    dag.add_const(rng.gen_range(-8i64..9))
                } else {
                    pick(&mut rng, &pool)
                }
            })
            .collect();
        let before = dag.len();
        let n = dag.add_op(op, &args);
        // Value numbering may dedup; only count fresh nodes so the block
        // really has `n_ops` operations.
        if dag.len() > before {
            pool.push(n);
            made += 1;
        }
    }

    // Store the last n_outputs computed values.
    let outs: Vec<NodeId> = pool.iter().rev().take(cfg.n_outputs).copied().collect();
    for (i, v) in outs.into_iter().enumerate() {
        let s = syms.intern(&format!("out{i}"));
        dag.add_store_var(s, v);
    }

    let f = Function {
        name: format!("rand{seed}"),
        params,
        blocks: vec![BasicBlock {
            label: None,
            dag,
            term: Terminator::Return(None),
        }],
        entry: BlockId(0),
        syms,
    };
    debug_assert!(f.validate().is_ok());
    f
}

/// Generate a multi-block function from `seed`.
///
/// Block 0 reads every function parameter; later blocks read variables
/// stored by earlier blocks (and parameters), so real dataflow crosses
/// every block boundary. Non-final blocks either fall through, jump, or
/// branch on a fresh comparison to a later block — the CFG is
/// forward-only and every block is reachable via its fallthrough edge.
/// The final block returns its last computed value.
///
/// The output is static-analysis clean by construction (the program
/// checker's property tests depend on it): a block only reads variables
/// *definitely assigned* on every incoming path, branch conditions always
/// depend on an input, every parameter is read, and every read feeds a
/// stored or returned value — so the cleanliness survives
/// [`crate::cfgopt::simplify_cfg`].
///
/// Each block is shaped by `cfg` exactly as in [`random_block`]. The
/// determinism property tests compile these with different worker counts
/// and require byte-identical programs.
pub fn random_function(cfg: &RandDagConfig, n_blocks: usize, seed: u64) -> Function {
    assert!(n_blocks >= 1);
    assert!(cfg.n_ops >= 1 && cfg.n_inputs >= 1 && cfg.n_outputs >= 1);
    assert!(!cfg.ops.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut syms = SymbolTable::new();
    let params: Vec<_> = (0..cfg.n_inputs)
        .map(|i| syms.intern(&format!("in{i}")))
        .collect();

    // Variables stored by any earlier block, in creation order. A block
    // may only *read* the subset assigned on every incoming path — the
    // CFG is forward-only, so by the time block `b` is built all its
    // incoming edges (and the definite-assignment sets behind them) are
    // known.
    let mut avail = params.clone();
    let mut assigned_out: Vec<std::collections::HashSet<crate::symbols::Sym>> =
        Vec::with_capacity(n_blocks);
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n_blocks];
    let locality = cfg.locality.clamp(0.0, 1.0);
    let const_prob = cfg.const_prob.clamp(0.0, 1.0);

    let mut blocks = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let readable: Vec<crate::symbols::Sym> = if b == 0 {
            params.clone()
        } else {
            avail
                .iter()
                .copied()
                .filter(|s| incoming[b].iter().all(|&p| assigned_out[p].contains(s)))
                .collect()
        };
        let mut dag = BlockDag::new();
        // Input leaves and everything derived from one: branch conditions
        // are drawn from this set so they never constant-fold.
        let mut input_dep: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let pool_seed: Vec<NodeId> = if b == 0 {
            // The entry block reads every parameter, so none is unused.
            params.iter().map(|&p| dag.add_input(p)).collect()
        } else {
            (0..cfg.n_inputs)
                .map(|_| dag.add_input(*readable.choose(&mut rng).unwrap()))
                .collect()
        };
        input_dep.extend(pool_seed.iter().copied());
        let mut pool = pool_seed.clone();

        let pick = |rng: &mut StdRng, pool: &[NodeId]| -> NodeId {
            if pool.len() == 1 {
                return pool[0];
            }
            pool[if rng.gen::<f64>() < locality {
                let lo = pool.len().saturating_sub((pool.len() / 4).max(1));
                rng.gen_range(lo..pool.len())
            } else {
                rng.gen_range(0..pool.len())
            }]
        };

        let mut made = 0usize;
        while made < cfg.n_ops {
            let op = *cfg.ops.choose(&mut rng).unwrap();
            let args: Vec<NodeId> = (0..op.arity())
                .map(|_| {
                    if const_prob > 0.0 && rng.gen::<f64>() < const_prob {
                        dag.add_const(rng.gen_range(-8i64..9))
                    } else {
                        pick(&mut rng, &pool)
                    }
                })
                .collect();
            let before = dag.len();
            let n = dag.add_op(op, &args);
            if dag.len() > before {
                if args.iter().any(|a| input_dep.contains(a)) {
                    input_dep.insert(n);
                }
                pool.push(n);
                made += 1;
            }
        }

        // Store the last n_outputs input-dependent values to this
        // block's own variables; later blocks may read them. Stores are
        // restricted to input-dependent values so a branch condition
        // resolved through one of them by CFG merging can never
        // constant-fold.
        let last_val = *pool.last().expect("block computes at least one value");
        let mut outs: Vec<NodeId> = pool
            .iter()
            .rev()
            .filter(|n| input_dep.contains(*n))
            .take(cfg.n_outputs)
            .copied()
            .collect();
        // Every input leaf must be a *real* use, reachable from the
        // block's roots — otherwise CFG simplification could drop a
        // parameter's only read and conjure an unused-parameter finding.
        // Fold leaves no root reaches into the first stored value.
        let mut reach: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut stack: Vec<NodeId> = outs.iter().copied().chain([last_val]).collect();
        while let Some(n) = stack.pop() {
            if reach.insert(n) {
                stack.extend(dag.node(n).args.iter().copied());
            }
        }
        let mut chain = outs[0];
        for &leaf in &pool_seed {
            if !reach.contains(&leaf) {
                chain = dag.add_op(Op::Add, &[chain, leaf]);
                input_dep.insert(chain);
                reach.insert(chain);
                reach.insert(leaf);
            }
        }
        outs[0] = chain;

        let mut defined = std::collections::HashSet::new();
        for (i, v) in outs.into_iter().enumerate() {
            let s = syms.intern(&format!("b{b}v{i}"));
            dag.add_store_var(s, v);
            avail.push(s);
            defined.insert(s);
        }

        let next = BlockId((b + 1) as u32);
        let term = if b + 1 == n_blocks {
            let rsym = syms.fresh("__ret");
            dag.mark_live_out(rsym, last_val);
            Terminator::Return(Some(last_val))
        } else if rng.gen::<f64>() < 0.6 {
            // Condition on the newest input-dependent value — the pool
            // always holds at least the block's Input leaves.
            let cond_src = *pool
                .iter()
                .rev()
                .find(|n| input_dep.contains(n))
                .expect("pool starts with input leaves");
            let zero = dag.add_const(0);
            let cond = dag.add_op(Op::CmpGt, &[cond_src, zero]);
            let csym = syms.fresh("__cond");
            dag.mark_live_out(csym, cond);
            let target = rng.gen_range((b + 1)..n_blocks);
            incoming[target].push(b);
            if target != b + 1 {
                incoming[b + 1].push(b);
            }
            Terminator::Branch {
                cond,
                if_true: BlockId(target as u32),
                if_false: next,
            }
        } else {
            incoming[b + 1].push(b);
            Terminator::Jump(next)
        };

        // Definitely assigned on exit = definitely assigned on entry
        // (params for block 0, the meet over incoming edges otherwise)
        // plus this block's own stores.
        let mut out: std::collections::HashSet<crate::symbols::Sym> =
            readable.iter().copied().collect();
        out.extend(defined);
        assigned_out.push(out);

        blocks.push(BasicBlock {
            label: None,
            dag,
            term,
        });
    }

    let f = Function {
        name: format!("randf{seed}"),
        params,
        blocks,
        entry: BlockId(0),
        syms,
    };
    debug_assert!(f.validate().is_ok(), "{:?}", f.validate());
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_function;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RandDagConfig::default();
        let a = random_block(&cfg, 42);
        let b = random_block(&cfg, 42);
        assert_eq!(a.blocks[0].dag.len(), b.blocks[0].dag.len());
        let ra = run_function(&a, &[1, 2, 3, 4]).unwrap();
        let rb = run_function(&b, &[1, 2, 3, 4]).unwrap();
        assert_eq!(ra.memory, rb.memory);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandDagConfig::default();
        let a = random_block(&cfg, 1);
        let b = random_block(&cfg, 2);
        let ra = run_function(&a, &[9, 8, 7, 6]).unwrap();
        let rb = run_function(&b, &[9, 8, 7, 6]).unwrap();
        // Structure or results differ with overwhelming probability.
        assert!(a.blocks[0].dag.len() != b.blocks[0].dag.len() || ra.memory != rb.memory);
    }

    #[test]
    fn respects_requested_sizes() {
        for n_ops in [4usize, 16, 40] {
            let cfg = RandDagConfig {
                n_ops,
                ..Default::default()
            };
            let f = random_block(&cfg, 7);
            let dag = &f.blocks[0].dag;
            let op_nodes = dag
                .iter()
                .filter(|(_, n)| !n.op.is_leaf() && !n.op.is_store())
                .count();
            assert_eq!(op_nodes, n_ops);
            assert!(dag.validate().is_ok());
        }
    }

    #[test]
    fn random_function_validates_and_runs() {
        let cfg = RandDagConfig {
            n_ops: 6,
            n_inputs: 3,
            n_outputs: 2,
            ..Default::default()
        };
        for seed in 0..15 {
            for n_blocks in [1usize, 2, 5, 9] {
                let f = random_function(&cfg, n_blocks, seed);
                assert_eq!(f.blocks.len(), n_blocks);
                f.validate().unwrap();
                run_function(&f, &[3, -1, 7]).unwrap();
            }
        }
    }

    #[test]
    fn random_function_is_deterministic() {
        let cfg = RandDagConfig::default();
        let a = random_function(&cfg, 6, 99);
        let b = random_function(&cfg, 6, 99);
        assert_eq!(a.blocks.len(), b.blocks.len());
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.dag.len(), y.dag.len());
            assert_eq!(x.term, y.term);
        }
        let ra = run_function(&a, &[1, 2, 3, 4]).unwrap();
        let rb = run_function(&b, &[1, 2, 3, 4]).unwrap();
        assert_eq!(ra.memory, rb.memory);
    }

    #[test]
    fn all_blocks_executable() {
        let cfg = RandDagConfig {
            n_ops: 25,
            n_inputs: 3,
            n_outputs: 3,
            ..Default::default()
        };
        for seed in 0..20 {
            let f = random_block(&cfg, seed);
            run_function(&f, &[5, -3, 11]).unwrap();
        }
    }
}
