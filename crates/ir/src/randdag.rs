//! Seeded random basic-block generation for scaling benchmarks and
//! property tests.
//!
//! The paper evaluates on "generic basic blocks that occur in DSP
//! application code"; this generator produces blocks with the same flavor
//! (arithmetic DAGs over a few inputs, a couple of stored results) at any
//! size, deterministically from a seed.

use crate::dag::{BlockDag, NodeId};
use crate::op::Op;
use crate::program::{BasicBlock, BlockId, Function, Terminator};
use crate::symbols::SymbolTable;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_block`].
#[derive(Debug, Clone)]
pub struct RandDagConfig {
    /// Number of operation nodes to generate (leaves excluded).
    pub n_ops: usize,
    /// Number of distinct input variables.
    pub n_inputs: usize,
    /// Operations to draw from (defaults to a DSP-ish mix).
    pub ops: Vec<Op>,
    /// Number of values stored to output variables (at least 1).
    pub n_outputs: usize,
    /// Bias toward recent nodes as operands (0.0 = uniform, 1.0 = chains).
    pub locality: f64,
    /// Probability that a fresh operand is a small constant instead of an
    /// existing value (exercises immediate-operand handling).
    pub const_prob: f64,
}

impl Default for RandDagConfig {
    fn default() -> Self {
        RandDagConfig {
            n_ops: 12,
            n_inputs: 4,
            ops: vec![Op::Add, Op::Sub, Op::Mul, Op::Add, Op::Mul, Op::Neg],
            n_outputs: 2,
            locality: 0.5,
            const_prob: 0.0,
        }
    }
}

/// Generate a single-block function from `seed`.
///
/// The block reads `n_inputs` parameters, computes `n_ops` operations, and
/// stores `n_outputs` results (the most recently computed values, so the
/// whole DAG stays live).
pub fn random_block(cfg: &RandDagConfig, seed: u64) -> Function {
    assert!(cfg.n_ops >= 1 && cfg.n_inputs >= 1 && cfg.n_outputs >= 1);
    assert!(!cfg.ops.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut syms = SymbolTable::new();
    let mut dag = BlockDag::new();

    let params: Vec<_> = (0..cfg.n_inputs)
        .map(|i| syms.intern(&format!("in{i}")))
        .collect();
    let mut pool: Vec<NodeId> = params.iter().map(|&p| dag.add_input(p)).collect();

    let locality = cfg.locality.clamp(0.0, 1.0);
    let pick = |rng: &mut StdRng, pool: &[NodeId]| -> NodeId {
        if pool.len() == 1 {
            return pool[0];
        }
        // Locality bias: with probability `locality` pick among the most
        // recent quarter of the pool, making chain-like DSP dataflow.
        pool[if rng.gen::<f64>() < locality {
            let lo = pool.len().saturating_sub((pool.len() / 4).max(1));
            rng.gen_range(lo..pool.len())
        } else {
            rng.gen_range(0..pool.len())
        }]
    };

    let const_prob = cfg.const_prob.clamp(0.0, 1.0);
    let mut made = 0usize;
    while made < cfg.n_ops {
        let op = *cfg.ops.choose(&mut rng).unwrap();
        let args: Vec<NodeId> = (0..op.arity())
            .map(|_| {
                if const_prob > 0.0 && rng.gen::<f64>() < const_prob {
                    dag.add_const(rng.gen_range(-8i64..9))
                } else {
                    pick(&mut rng, &pool)
                }
            })
            .collect();
        let before = dag.len();
        let n = dag.add_op(op, &args);
        // Value numbering may dedup; only count fresh nodes so the block
        // really has `n_ops` operations.
        if dag.len() > before {
            pool.push(n);
            made += 1;
        }
    }

    // Store the last n_outputs computed values.
    let outs: Vec<NodeId> = pool
        .iter()
        .rev()
        .take(cfg.n_outputs)
        .copied()
        .collect();
    for (i, v) in outs.into_iter().enumerate() {
        let s = syms.intern(&format!("out{i}"));
        dag.add_store_var(s, v);
    }

    let f = Function {
        name: format!("rand{seed}"),
        params,
        blocks: vec![BasicBlock {
            label: None,
            dag,
            term: Terminator::Return(None),
        }],
        entry: BlockId(0),
        syms,
    };
    debug_assert!(f.validate().is_ok());
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_function;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RandDagConfig::default();
        let a = random_block(&cfg, 42);
        let b = random_block(&cfg, 42);
        assert_eq!(a.blocks[0].dag.len(), b.blocks[0].dag.len());
        let ra = run_function(&a, &[1, 2, 3, 4]).unwrap();
        let rb = run_function(&b, &[1, 2, 3, 4]).unwrap();
        assert_eq!(ra.memory, rb.memory);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandDagConfig::default();
        let a = random_block(&cfg, 1);
        let b = random_block(&cfg, 2);
        let ra = run_function(&a, &[9, 8, 7, 6]).unwrap();
        let rb = run_function(&b, &[9, 8, 7, 6]).unwrap();
        // Structure or results differ with overwhelming probability.
        assert!(a.blocks[0].dag.len() != b.blocks[0].dag.len() || ra.memory != rb.memory);
    }

    #[test]
    fn respects_requested_sizes() {
        for n_ops in [4usize, 16, 40] {
            let cfg = RandDagConfig {
                n_ops,
                ..Default::default()
            };
            let f = random_block(&cfg, 7);
            let dag = &f.blocks[0].dag;
            let op_nodes = dag
                .iter()
                .filter(|(_, n)| !n.op.is_leaf() && !n.op.is_store())
                .count();
            assert_eq!(op_nodes, n_ops);
            assert!(dag.validate().is_ok());
        }
    }

    #[test]
    fn all_blocks_executable() {
        let cfg = RandDagConfig {
            n_ops: 25,
            n_inputs: 3,
            n_outputs: 3,
            ..Default::default()
        };
        for seed in 0..20 {
            let f = random_block(&cfg, seed);
            run_function(&f, &[5, -3, 11]).unwrap();
        }
    }
}
