//! The broken fixtures under `tests/fixtures/` feed the verifier-crate
//! snapshot tests.  This file pins which parse path accepts each one:
//! the lenient parser must accept everything (so the linter can see it),
//! while the strict parser rejects only the machine with a dangling bank.

use aviv_isdl::{parse_machine, parse_machine_lenient};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn orphan_bank_needs_the_lenient_parser() {
    let src = fixture("orphan_bank.isdl");
    let err = parse_machine(&src).expect_err("strict parse must reject an unreachable bank");
    assert!(
        err.to_string().contains("RF2"),
        "error should name the orphan bank: {err}"
    );
    let machine = parse_machine_lenient(&src).expect("lenient parse must accept it");
    assert_eq!(machine.name, "OrphanBank");
    assert_eq!(machine.banks().len(), 2);
}

#[test]
fn uncoverable_op_passes_strict_validation() {
    // Nothing structurally wrong: the defect (a pattern op no unit
    // implements) is semantic and only the linter reports it.
    let machine = parse_machine(&fixture("uncoverable_op.isdl")).unwrap();
    assert_eq!(machine.complexes().len(), 1);
    machine.validate().unwrap();
}

#[test]
fn dead_complex_passes_strict_validation() {
    let machine = parse_machine(&fixture("dead_complex.isdl")).unwrap();
    assert_eq!(machine.complexes().len(), 1);
    machine.validate().unwrap();
}

#[test]
fn lenient_and_strict_agree_on_well_formed_machines() {
    for src in [fixture("uncoverable_op.isdl"), fixture("dead_complex.isdl")] {
        let strict = parse_machine(&src).unwrap();
        let lenient = parse_machine_lenient(&src).unwrap();
        assert_eq!(format!("{strict:?}"), format!("{lenient:?}"));
    }
}
