//! Databases derived from the machine description (paper §II).
//!
//! "The instruction set information contained in the ISDL machine
//! description is used to create several databases which are later used to
//! create the Split-Node DAG":
//!
//! * [`OpDb`] — the correlation between target-processor operations and
//!   the SUIF basic operations (which units can execute each [`Op`], and
//!   which complex instructions match which root op);
//! * [`TransferDb`] — "all possible data transfers explicitly stated in
//!   the target machine description ... subsequently expanded to include
//!   multiple-step data transfers as well".

use crate::model::{BusId, Location, Machine, UnitId};
use aviv_ir::Op;
use std::collections::HashMap;

/// One hop of a transfer path: a move across one bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hop {
    /// Bus carrying the hop.
    pub bus: BusId,
    /// Source location.
    pub from: Location,
    /// Destination location.
    pub to: Location,
}

/// A (possibly multi-hop) transfer path between two locations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferPath {
    /// The hops in order; `hops[0].from` is the source and
    /// `hops.last().to` the destination.
    pub hops: Vec<Hop>,
}

impl TransferPath {
    /// Path cost = number of hops = transfer nodes the path inserts.
    pub fn cost(&self) -> usize {
        self.hops.len()
    }

    /// Source location.
    pub fn from(&self) -> Location {
        self.hops.first().expect("path has at least one hop").from
    }

    /// Destination location.
    pub fn to(&self) -> Location {
        self.hops.last().expect("path has at least one hop").to
    }
}

/// Operation→units correlation database.
#[derive(Debug, Clone)]
pub struct OpDb {
    by_op: HashMap<Op, Vec<UnitId>>,
    /// Complex instruction ids grouped by root op of their pattern.
    complexes_by_root: HashMap<Op, Vec<usize>>,
}

impl OpDb {
    /// Build the database from a machine.
    pub fn new(m: &Machine) -> Self {
        let mut by_op: HashMap<Op, Vec<UnitId>> = HashMap::new();
        for (i, u) in m.units().iter().enumerate() {
            for cap in &u.ops {
                by_op.entry(cap.op).or_default().push(UnitId(i as u32));
            }
        }
        let mut complexes_by_root: HashMap<Op, Vec<usize>> = HashMap::new();
        for (i, cx) in m.complexes().iter().enumerate() {
            if let crate::model::PatTree::Op(op, _) = &cx.pattern {
                complexes_by_root.entry(*op).or_default().push(i);
            }
        }
        OpDb {
            by_op,
            complexes_by_root,
        }
    }

    /// Units able to execute `op`, in unit order (empty when none).
    pub fn units_for(&self, op: Op) -> &[UnitId] {
        self.by_op.get(&op).map_or(&[], |v| v.as_slice())
    }

    /// Complex-instruction indices whose pattern root is `op`.
    pub fn complexes_rooted_at(&self, op: Op) -> &[usize] {
        self.complexes_by_root
            .get(&op)
            .map_or(&[], |v| v.as_slice())
    }

    /// Whether the machine can implement `op` at all (directly; complex
    /// coverage not counted).
    pub fn supports(&self, op: Op) -> bool {
        !self.units_for(op).is_empty()
    }
}

/// All-pairs shortest transfer paths between storage locations.
///
/// For each ordered `(from, to)` pair the database stores *every* shortest
/// path (up to a cap): when an architecture offers multiple equal-length
/// routes, §IV-B's heuristic chooses among them by parallelism, so the
/// alternatives must be preserved.
#[derive(Debug, Clone)]
pub struct TransferDb {
    paths: HashMap<(Location, Location), Vec<TransferPath>>,
    /// Cap on stored equal-cost alternatives per pair.
    max_alternatives: usize,
}

impl TransferDb {
    /// Build the database with the default alternative cap (4).
    pub fn new(m: &Machine) -> Self {
        Self::with_cap(m, 4)
    }

    /// Build the database keeping up to `max_alternatives` shortest paths
    /// per location pair.
    pub fn with_cap(m: &Machine, max_alternatives: usize) -> Self {
        let locs = m.locations();
        // Direct single-hop edges.
        let mut edges: HashMap<Location, Vec<Hop>> = HashMap::new();
        for (bi, bus) in m.buses().iter().enumerate() {
            for &from in &bus.endpoints {
                for &to in &bus.endpoints {
                    if from != to {
                        edges.entry(from).or_default().push(Hop {
                            bus: BusId(bi as u32),
                            from,
                            to,
                        });
                    }
                }
            }
        }
        let mut paths: HashMap<(Location, Location), Vec<TransferPath>> = HashMap::new();
        for &src in &locs {
            // Breadth-first exploration keeping all shortest paths.
            let mut best_cost: HashMap<Location, usize> = HashMap::new();
            best_cost.insert(src, 0);
            let mut frontier: Vec<TransferPath> = Vec::new();
            // Seed with single hops.
            for hop in edges.get(&src).into_iter().flatten() {
                frontier.push(TransferPath { hops: vec![*hop] });
            }
            let mut depth = 1usize;
            while !frontier.is_empty() && depth <= locs.len() {
                let mut next = Vec::new();
                for p in frontier {
                    let dst = p.to();
                    let entry = best_cost.entry(dst).or_insert(depth);
                    if *entry == depth {
                        let list = paths.entry((src, dst)).or_default();
                        if list.len() < max_alternatives {
                            list.push(p.clone());
                        }
                        // Memory is a path endpoint, never an intermediate
                        // hop: routing a value bank→memory→bank is a
                        // spill, which the covering engine inserts
                        // explicitly, not a transfer.
                        if dst == Location::Mem {
                            continue;
                        }
                        // Extend only shortest paths.
                        for hop in edges.get(&dst).into_iter().flatten() {
                            if !best_cost.contains_key(&hop.to) || best_cost[&hop.to] == depth + 1 {
                                let mut q = p.clone();
                                q.hops.push(*hop);
                                next.push(q);
                            }
                        }
                    }
                }
                frontier = next;
                depth += 1;
            }
        }
        TransferDb {
            paths,
            max_alternatives,
        }
    }

    /// All stored shortest paths from `from` to `to` (empty if
    /// unreachable; locations are reachable in any validated machine).
    pub fn paths(&self, from: Location, to: Location) -> &[TransferPath] {
        if from == to {
            return &[];
        }
        self.paths.get(&(from, to)).map_or(&[], |v| v.as_slice())
    }

    /// Cost (hop count) of the shortest transfer, or `None` when
    /// unreachable. Zero when `from == to`.
    pub fn cost(&self, from: Location, to: Location) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        self.paths
            .get(&(from, to))
            .and_then(|v| v.first())
            .map(TransferPath::cost)
    }

    /// The configured alternative cap.
    pub fn max_alternatives(&self) -> usize {
        self.max_alternatives
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MachineBuilder, SlotPattern};

    fn single_bus_machine() -> Machine {
        let mut b = MachineBuilder::new("m");
        let u1 = b.unit("U1", &[Op::Add, Op::Sub], 4);
        let u2 = b.unit("U2", &[Op::Add, Op::Mul], 4);
        let u3 = b.unit("U3", &[Op::Mul], 4);
        b.bus("DB", &[u1, u2, u3], true, 1);
        b.build().unwrap()
    }

    #[test]
    fn op_db_lists_capable_units() {
        let m = single_bus_machine();
        let db = OpDb::new(&m);
        assert_eq!(db.units_for(Op::Add), &[UnitId(0), UnitId(1)]);
        assert_eq!(db.units_for(Op::Mul), &[UnitId(1), UnitId(2)]);
        assert_eq!(db.units_for(Op::Sub), &[UnitId(0)]);
        assert!(db.units_for(Op::Div).is_empty());
        assert!(db.supports(Op::Add));
        assert!(!db.supports(Op::Div));
    }

    #[test]
    fn single_bus_gives_one_hop_paths() {
        let m = single_bus_machine();
        let db = TransferDb::new(&m);
        for &from in &m.locations() {
            for &to in &m.locations() {
                if from == to {
                    assert_eq!(db.cost(from, to), Some(0));
                } else {
                    assert_eq!(db.cost(from, to), Some(1), "{from}->{to}");
                    assert_eq!(db.paths(from, to).len(), 1);
                }
            }
        }
    }

    #[test]
    fn chained_buses_need_multi_hop() {
        // U1 <-> U2 on bus A; U2 <-> memory on bus B. U1's bank reaches
        // memory only through U2's bank: 2 hops.
        let mut b = MachineBuilder::new("chain");
        let u1 = b.unit("U1", &[Op::Add], 4);
        let u2 = b.unit("U2", &[Op::Mul], 4);
        b.bus("A", &[u1, u2], false, 1);
        b.bus("B", &[u2], true, 1);
        let m = b.build().unwrap();
        let db = TransferDb::new(&m);
        let rf1 = Location::Bank(m.bank_of(UnitId(0)));
        let rf2 = Location::Bank(m.bank_of(UnitId(1)));
        assert_eq!(db.cost(rf1, rf2), Some(1));
        assert_eq!(db.cost(rf1, Location::Mem), Some(2));
        let p = &db.paths(rf1, Location::Mem)[0];
        assert_eq!(p.hops.len(), 2);
        assert_eq!(p.from(), rf1);
        assert_eq!(p.to(), Location::Mem);
        assert_eq!(p.hops[0].to, rf2);
    }

    #[test]
    fn parallel_buses_give_alternatives() {
        // Two buses both connect U1, U2, memory: two shortest paths.
        let mut b = MachineBuilder::new("par");
        let u1 = b.unit("U1", &[Op::Add], 4);
        let u2 = b.unit("U2", &[Op::Mul], 4);
        b.bus("A", &[u1, u2], true, 1);
        b.bus("B", &[u1, u2], true, 1);
        let m = b.build().unwrap();
        let db = TransferDb::new(&m);
        let rf1 = Location::Bank(m.bank_of(UnitId(0)));
        let rf2 = Location::Bank(m.bank_of(UnitId(1)));
        let alts = db.paths(rf1, rf2);
        assert_eq!(alts.len(), 2);
        assert_ne!(alts[0].hops[0].bus, alts[1].hops[0].bus);
    }

    #[test]
    fn complexes_indexed_by_root() {
        use crate::model::PatTree;
        let mut b = MachineBuilder::new("cx");
        let u1 = b.unit("U1", &[Op::Add, Op::Mul], 4);
        b.bus("DB", &[u1], true, 1);
        b.complex(
            "mac",
            u1,
            PatTree::Op(
                Op::Add,
                vec![
                    PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(1)]),
                    PatTree::Arg(2),
                ],
            ),
        );
        let m = b.build().unwrap();
        let db = OpDb::new(&m);
        assert_eq!(db.complexes_rooted_at(Op::Add), &[0]);
        assert!(db.complexes_rooted_at(Op::Mul).is_empty());
        // Keep clippy quiet about unused import in cfg(test).
        let _ = SlotPattern::BusUse { bus: BusId(0) };
    }
}

/// A machine bundled with its derived databases — what the back end
/// actually retargets against.
#[derive(Debug, Clone)]
pub struct Target {
    /// The processor description.
    pub machine: Machine,
    /// Operation→unit correlation database.
    pub ops: OpDb,
    /// Data-transfer path database.
    pub xfers: TransferDb,
    /// The bank cheapest to load into from memory — where live-out input
    /// leaves are materialized. Precomputed so every block (and every
    /// worker thread) shares one answer instead of rescanning the
    /// transfer database.
    pub load_bank: Option<crate::model::BankId>,
    /// The bank with the cheapest memory round trip (load + store) — the
    /// staging bank for memory-to-memory copies.
    pub round_trip_bank: Option<crate::model::BankId>,
}

impl Target {
    /// Build the databases for `machine`.
    pub fn new(machine: Machine) -> Self {
        let ops = OpDb::new(&machine);
        let xfers = TransferDb::new(&machine);
        let banks = (0..machine.banks().len() as u32).map(crate::model::BankId);
        let load_bank = banks.clone().min_by_key(|&b| {
            xfers
                .cost(Location::Mem, Location::Bank(b))
                .unwrap_or(usize::MAX)
        });
        let round_trip_bank = banks.min_by_key(|&b| {
            xfers
                .cost(Location::Mem, Location::Bank(b))
                .unwrap_or(usize::MAX)
                .saturating_add(
                    xfers
                        .cost(Location::Bank(b), Location::Mem)
                        .unwrap_or(usize::MAX),
                )
        });
        Target {
            machine,
            ops,
            xfers,
            load_bank,
            round_trip_bank,
        }
    }

    /// Stable content fingerprint of the machine description.
    ///
    /// Two `Target`s fingerprint equal iff their machines print to the
    /// same canonical ISDL text — the derived databases (`ops`, `xfers`,
    /// bank picks) are pure functions of the machine, so hashing the
    /// canonical printout covers everything covering and scheduling can
    /// observe. Compile services use this as the target component of
    /// plan-cache keys, so the value must be reproducible across parses
    /// and processes; it is built on [`aviv_ir::StableHasher`] (FNV-1a),
    /// never the std hasher.
    pub fn fingerprint(&self) -> u64 {
        aviv_ir::stablehash::hash_str(&crate::printer::to_isdl(&self.machine))
    }
}
