//! # aviv-isdl — ISDL-style machine descriptions for AVIV
//!
//! The AVIV code generator (Hanono & Devadas, DAC 1998) is retargeted by an
//! ISDL machine description. This crate models the information AVIV
//! extracts from ISDL (paper §II):
//!
//! * [`Machine`] — functional units with per-unit register files, buses,
//!   instruction constraints, and complex instructions;
//! * [`parse_machine`] — a textual description format;
//! * [`OpDb`] — the operation→unit correlation database;
//! * [`TransferDb`] — explicit and multi-hop data-transfer paths;
//! * [`archs`] — the paper's Fig. 3 architecture and Table II variant,
//!   plus additional machines used by tests and examples.
//!
//! ```
//! use aviv_isdl::{archs, OpDb};
//! use aviv_ir::Op;
//!
//! let machine = archs::example_arch(4);
//! let db = OpDb::new(&machine);
//! assert_eq!(db.units_for(Op::Mul).len(), 2); // U2 and U3
//! ```

#![warn(missing_docs)]

pub mod archs;
pub mod db;
pub mod model;
pub mod parser;
pub mod printer;

pub use db::{Hop, OpDb, Target, TransferDb, TransferPath};
pub use model::{
    BankId, Bus, BusId, ComplexInstr, Constraint, Location, Machine, MachineBuilder, OpCap,
    PatTree, RegBank, SlotPattern, Unit, UnitId,
};
pub use parser::{parse_machine, parse_machine_lenient, IsdlError};
pub use printer::to_isdl;
