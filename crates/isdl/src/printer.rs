//! Pretty-printer: [`Machine`] → ISDL text.
//!
//! Together with [`crate::parse_machine`] this round-trips machine
//! descriptions losslessly, which is how generated or programmatically
//! built machines (e.g. from a design-space explorer) get persisted in
//! the same format hand-written descriptions use.

use crate::model::{Location, Machine, PatTree, SlotPattern};
use std::fmt::Write as _;

/// Render `machine` as parseable ISDL text.
///
/// ```
/// use aviv_isdl::{archs, parse_machine, to_isdl};
///
/// let machine = archs::example_arch(4);
/// let text = to_isdl(&machine);
/// let reparsed = parse_machine(&text).expect("printer output parses");
/// assert_eq!(machine.units().len(), reparsed.units().len());
/// ```
pub fn to_isdl(machine: &Machine) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "machine {} {{", machine.name);
    for unit in machine.units() {
        let ops: Vec<&str> = unit.ops.iter().map(|c| c.op.mnemonic()).collect();
        let bank = machine.bank(unit.bank);
        let _ = writeln!(
            out,
            "    unit {} {{ ops {{ {} }} regfile {}[{}]; }}",
            unit.name,
            ops.join(", "),
            bank.name,
            bank.size
        );
    }
    let _ = writeln!(out, "    memory DM;");
    for bus in machine.buses() {
        let eps: Vec<String> = bus
            .endpoints
            .iter()
            .map(|e| match e {
                Location::Bank(b) => machine.bank(*b).name.clone(),
                Location::Mem => "DM".to_string(),
            })
            .collect();
        let _ = writeln!(
            out,
            "    bus {} capacity {} connects {{ {} }};",
            bus.name,
            bus.capacity,
            eps.join(", ")
        );
    }
    for con in machine.constraints() {
        let members: Vec<String> = con
            .members
            .iter()
            .map(|m| match *m {
                SlotPattern::UnitOp { unit, op } => {
                    let uname = &machine.unit(unit).name;
                    match op {
                        Some(op) => format!("{uname}.{}", op.mnemonic()),
                        None => format!("{uname}.*"),
                    }
                }
                SlotPattern::BusUse { bus } => format!("bus {}", machine.bus(bus).name),
            })
            .collect();
        let _ = writeln!(
            out,
            "    constraint at_most {} {{ {} }};",
            con.at_most,
            members.join(", ")
        );
    }
    for cx in machine.complexes() {
        let _ = writeln!(
            out,
            "    complex {} on {} {{ {} }};",
            cx.name,
            machine.unit(cx.unit).name,
            render_pattern(&cx.pattern)
        );
    }
    out.push_str("}\n");
    out
}

fn render_pattern(p: &PatTree) -> String {
    match p {
        PatTree::Arg(i) => arg_name(*i),
        PatTree::Op(op, subs) => {
            let inner: Vec<String> = subs.iter().map(render_pattern).collect();
            format!("{}({})", op.mnemonic(), inner.join(", "))
        }
    }
}

/// Stable operand names `a, b, c, ... a1, b1, ...` for pattern printing.
fn arg_name(i: usize) -> String {
    let letter = (b'a' + (i % 26) as u8) as char;
    if i < 26 {
        letter.to_string()
    } else {
        format!("{letter}{}", i / 26)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archs;
    use crate::parser::parse_machine;

    fn machines_equal(a: &Machine, b: &Machine) -> bool {
        if a.name != b.name
            || a.units().len() != b.units().len()
            || a.banks().len() != b.banks().len()
            || a.buses().len() != b.buses().len()
            || a.constraints().len() != b.constraints().len()
            || a.complexes().len() != b.complexes().len()
        {
            return false;
        }
        for (ua, ub) in a.units().iter().zip(b.units()) {
            if ua.name != ub.name || ua.bank != ub.bank {
                return false;
            }
            let ops_a: Vec<_> = ua.ops.iter().map(|c| c.op).collect();
            let ops_b: Vec<_> = ub.ops.iter().map(|c| c.op).collect();
            if ops_a != ops_b {
                return false;
            }
        }
        for (ba, bb) in a.banks().iter().zip(b.banks()) {
            if ba.name != bb.name || ba.size != bb.size {
                return false;
            }
        }
        for (ba, bb) in a.buses().iter().zip(b.buses()) {
            if ba.name != bb.name || ba.capacity != bb.capacity || ba.endpoints != bb.endpoints {
                return false;
            }
        }
        for (ca, cb) in a.constraints().iter().zip(b.constraints()) {
            if ca.at_most != cb.at_most || ca.members != cb.members {
                return false;
            }
        }
        for (ca, cb) in a.complexes().iter().zip(b.complexes()) {
            if ca.name != cb.name || ca.unit != cb.unit || ca.pattern != cb.pattern {
                return false;
            }
        }
        true
    }

    #[test]
    fn round_trips_every_bundled_architecture() {
        for m in [
            archs::example_arch(4),
            archs::example_arch(2),
            archs::arch_two(4),
            archs::dsp_arch(4),
            archs::chained_arch(4),
            archs::single_alu(4),
            archs::wide_arch(8),
        ] {
            let text = to_isdl(&m);
            let back = parse_machine(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", m.name));
            assert!(machines_equal(&m, &back), "{} round trip:\n{text}", m.name);
        }
    }

    #[test]
    fn round_trips_constraints_and_complexes() {
        let src = "machine C {
            unit U1 { ops { add, mul } regfile R1[4]; }
            unit U2 { ops { add, mul, sub } regfile R2[4]; }
            memory DM;
            bus DB capacity 2 connects { R1, R2, DM };
            constraint at_most 1 { U1.mul, U2.mul };
            constraint at_most 1 { U1.*, bus DB };
            complex mac on U2 { add(mul(a, b), c) };
            complex sq on U1 { mul(a, a) };
        }";
        let m = parse_machine(src).unwrap();
        let text = to_isdl(&m);
        let back = parse_machine(&text).unwrap();
        assert!(machines_equal(&m, &back), "{text}");
        // Repeated pattern operands survive the trip.
        assert_eq!(back.complexes()[1].pattern.arg_count(), 1);
    }

    #[test]
    fn arg_names_are_stable() {
        assert_eq!(arg_name(0), "a");
        assert_eq!(arg_name(2), "c");
        assert_eq!(arg_name(26), "a1");
    }
}
