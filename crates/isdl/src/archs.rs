//! The target architectures used in the paper's experiments, plus a few
//! extra machines that exercise other corners of the model.
//!
//! * [`example_arch`] — the paper's Fig. 3 VLIW: U1 {ADD, SUB, COMPL},
//!   U2 {ADD, SUB, MUL}, U3 {ADD, MUL}, per-unit register files, one
//!   shared databus connecting all register files and data memory.
//!   (COMPL is on U1 per the §IV-A worked example.)
//! * [`arch_two`] — Table II's variant: "removing the SUB operation from
//!   functional unit U1, and completely removing functional unit U3".
//! * [`dsp_arch`] — a MAC-capable two-unit DSP used by the complex-
//!   instruction examples and tests.
//! * [`chained_arch`] — a machine whose banks connect through two buses,
//!   forcing multi-hop transfers.
//! * [`single_alu`] — a degenerate one-unit machine (sequential-machine
//!   sanity baseline).

use crate::model::{Machine, MachineBuilder, PatTree};
use crate::parser::parse_machine;
use aviv_ir::Op;

/// ISDL text of the paper's Fig. 3 example architecture.
pub const EXAMPLE_ARCH_ISDL: &str = "\
machine Example {
    // Fig. 3 of the paper: three heterogeneous units, private register
    // files, one shared databus to data memory. Comparisons live on U1
    // so conditional branches compile (see example_arch docs).
    unit U1 { ops { add, sub, compl,
                    cmpeq, cmpne, cmplt, cmple, cmpgt, cmpge } regfile RF1[4]; }
    unit U2 { ops { add, sub, mul }   regfile RF2[4]; }
    unit U3 { ops { add, mul }        regfile RF3[4]; }
    memory DM;
    bus DB capacity 1 connects { RF1, RF2, RF3, DM };
}";

/// ISDL text of Table II's reduced architecture.
pub const ARCH_TWO_ISDL: &str = "\
machine ArchII {
    // Table II: U1 loses SUB, U3 is removed entirely.
    unit U1 { ops { add, compl,
                    cmpeq, cmpne, cmplt, cmple, cmpgt, cmpge } regfile RF1[4]; }
    unit U2 { ops { add, sub, mul } regfile RF2[4]; }
    memory DM;
    bus DB capacity 1 connects { RF1, RF2, DM };
}";

/// The comparison operations every control-flow-capable unit carries.
const CMPS: [Op; 6] = [
    Op::CmpEq,
    Op::CmpNe,
    Op::CmpLt,
    Op::CmpLe,
    Op::CmpGt,
    Op::CmpGe,
];

/// The paper's Fig. 3 example architecture with `regs` registers per
/// register file (the experiments use 4 and 2).
///
/// Extension over the figure: U1 also carries the comparison operations
/// so blocks ending in conditional branches compile. The paper's
/// benchmark blocks are straight-line arithmetic, so their Split-Node
/// DAGs and results are unaffected.
pub fn example_arch(regs: u32) -> Machine {
    let mut b = MachineBuilder::new("Example");
    let mut u1_ops = vec![Op::Add, Op::Sub, Op::Compl];
    u1_ops.extend(CMPS);
    let u1 = b.unit("U1", &u1_ops, regs);
    let u2 = b.unit("U2", &[Op::Add, Op::Sub, Op::Mul], regs);
    let u3 = b.unit("U3", &[Op::Add, Op::Mul], regs);
    b.bus("DB", &[u1, u2, u3], true, 1);
    b.build().expect("example arch is valid")
}

/// Table II's architecture: U1 without SUB, no U3 (comparisons kept on
/// U1 as in [`example_arch`]).
pub fn arch_two(regs: u32) -> Machine {
    let mut b = MachineBuilder::new("ArchII");
    let mut u1_ops = vec![Op::Add, Op::Compl];
    u1_ops.extend(CMPS);
    let u1 = b.unit("U1", &u1_ops, regs);
    let u2 = b.unit("U2", &[Op::Add, Op::Sub, Op::Mul], regs);
    b.bus("DB", &[u1, u2], true, 1);
    b.build().expect("arch two is valid")
}

/// A two-unit DSP with a multiply-accumulate complex instruction on U2
/// and a wider (capacity 2) bus.
pub fn dsp_arch(regs: u32) -> Machine {
    let mut b = MachineBuilder::new("DspMac");
    let mut u1_ops = vec![Op::Add, Op::Sub, Op::Shl, Op::Shr, Op::Compl];
    u1_ops.extend(CMPS);
    let u1 = b.unit("U1", &u1_ops, regs);
    let u2 = b.unit("U2", &[Op::Add, Op::Mul], regs);
    b.bus("DB", &[u1, u2], true, 2);
    b.complex(
        "mac",
        u2,
        PatTree::Op(
            Op::Add,
            vec![
                PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(1)]),
                PatTree::Arg(2),
            ],
        ),
    );
    b.build().expect("dsp arch is valid")
}

/// A machine where U1's bank talks to memory only through U2's bank:
/// exercises multi-hop transfer paths.
pub fn chained_arch(regs: u32) -> Machine {
    let mut b = MachineBuilder::new("Chained");
    let mut u1_ops = vec![Op::Add, Op::Sub, Op::Compl];
    u1_ops.extend(CMPS);
    let u1 = b.unit("U1", &u1_ops, regs);
    let u2 = b.unit("U2", &[Op::Add, Op::Mul], regs);
    b.bus("LOCAL", &[u1, u2], false, 1);
    b.bus("MEMBUS", &[u2], true, 1);
    b.build().expect("chained arch is valid")
}

/// One unit that does everything — the degenerate sequential machine.
pub fn single_alu(regs: u32) -> Machine {
    let mut b = MachineBuilder::new("SingleAlu");
    let u1 = b.unit(
        "ALU",
        &[
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Shl,
            Op::Shr,
            Op::Neg,
            Op::Compl,
            Op::Abs,
            Op::Min,
            Op::Max,
            Op::CmpEq,
            Op::CmpNe,
            Op::CmpLt,
            Op::CmpLe,
            Op::CmpGt,
            Op::CmpGe,
        ],
        regs,
    );
    b.bus("DB", &[u1], true, 1);
    b.build().expect("single alu is valid")
}

/// A three-unit machine with full op coverage on every unit and generous
/// resources; useful as a permissive target in property tests.
pub fn wide_arch(regs: u32) -> Machine {
    let mut b = MachineBuilder::new("Wide");
    let every = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Shl,
        Op::Shr,
        Op::Neg,
        Op::Compl,
        Op::Abs,
        Op::Min,
        Op::Max,
        Op::CmpEq,
        Op::CmpNe,
        Op::CmpLt,
        Op::CmpLe,
        Op::CmpGt,
        Op::CmpGe,
    ];
    let u1 = b.unit("U1", &every, regs);
    let u2 = b.unit("U2", &every, regs);
    let u3 = b.unit("U3", &every, regs);
    b.bus("DB", &[u1, u2, u3], true, 2);
    b.build().expect("wide arch is valid")
}

/// Parse [`EXAMPLE_ARCH_ISDL`]; equivalent to [`example_arch`]`(4)`.
pub fn example_arch_from_isdl() -> Machine {
    parse_machine(EXAMPLE_ARCH_ISDL).expect("bundled ISDL is valid")
}

/// Parse [`ARCH_TWO_ISDL`]; equivalent to [`arch_two`]`(4)`.
pub fn arch_two_from_isdl() -> Machine {
    parse_machine(ARCH_TWO_ISDL).expect("bundled ISDL is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::OpDb;
    use crate::model::UnitId;

    #[test]
    fn example_arch_matches_fig3() {
        let m = example_arch(4);
        let db = OpDb::new(&m);
        // ADD on all three units, SUB on U1+U2, MUL on U2+U3.
        assert_eq!(db.units_for(Op::Add).len(), 3);
        assert_eq!(db.units_for(Op::Sub), &[UnitId(0), UnitId(1)]);
        assert_eq!(db.units_for(Op::Mul), &[UnitId(1), UnitId(2)]);
        assert_eq!(db.units_for(Op::Compl), &[UnitId(0)]);
        assert_eq!(m.banks().iter().map(|b| b.size).max(), Some(4));
    }

    #[test]
    fn builder_and_isdl_agree() {
        let a = example_arch(4);
        let b = example_arch_from_isdl();
        assert_eq!(a.units().len(), b.units().len());
        for (ua, ub) in a.units().iter().zip(b.units()) {
            assert_eq!(ua.name, ub.name);
            assert_eq!(ua.ops.len(), ub.ops.len());
            for (ca, cb) in ua.ops.iter().zip(&ub.ops) {
                assert_eq!(ca.op, cb.op);
            }
        }
        assert_eq!(a.buses()[0].endpoints.len(), b.buses()[0].endpoints.len());

        let a2 = arch_two(4);
        let b2 = arch_two_from_isdl();
        assert_eq!(a2.units().len(), b2.units().len());
        assert_eq!(a2.units().len(), 2);
    }

    #[test]
    fn arch_two_is_the_reduction_described() {
        let m = arch_two(4);
        let db = OpDb::new(&m);
        assert_eq!(db.units_for(Op::Sub).len(), 1, "SUB only on U2");
        assert_eq!(db.units_for(Op::Mul).len(), 1, "MUL only on U2");
        assert_eq!(db.units_for(Op::Add).len(), 2);
    }

    #[test]
    fn all_bundled_archs_validate() {
        for m in [
            example_arch(4),
            example_arch(2),
            arch_two(4),
            dsp_arch(4),
            chained_arch(4),
            single_alu(4),
            wide_arch(8),
        ] {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn dsp_arch_has_mac() {
        let m = dsp_arch(4);
        assert_eq!(m.complexes().len(), 1);
        assert_eq!(m.complexes()[0].name, "mac");
        assert_eq!(m.complexes()[0].pattern.eval(&[2, 3, 4]), 10);
    }
}

/// A four-unit VLIW with two buses — a wider design-space point for the
/// exploration examples and stress tests.
pub fn quad_vliw(regs: u32) -> Machine {
    let mut b = MachineBuilder::new("QuadVliw");
    let mut u1_ops = vec![Op::Add, Op::Sub, Op::Compl];
    u1_ops.extend(CMPS);
    let u1 = b.unit("U1", &u1_ops, regs);
    let u2 = b.unit("U2", &[Op::Add, Op::Sub, Op::Mul], regs);
    let u3 = b.unit("U3", &[Op::Add, Op::Mul], regs);
    let u4 = b.unit("U4", &[Op::Add, Op::Sub], regs);
    b.bus("DB0", &[u1, u2, u3, u4], true, 1);
    b.bus("DB1", &[u1, u2, u3, u4], true, 1);
    b.build().expect("quad vliw is valid")
}

/// An accumulator-style DSP with *uneven* register files: a small
/// accumulator bank on the MAC unit and a larger general bank —
/// exercises per-bank pressure tracking with asymmetric sizes.
pub fn accumulator_dsp() -> Machine {
    let mut b = MachineBuilder::new("AccDsp");
    let mut u1_ops = vec![Op::Add, Op::Sub, Op::Compl, Op::Shl, Op::Shr];
    u1_ops.extend(CMPS);
    let u1 = b.unit("GP", &u1_ops, 8);
    // Three registers: the `mac` complex below reads three operands at
    // once, so a smaller accumulator bank could never feed it (W002).
    let u2 = b.unit("MACU", &[Op::Add, Op::Mul], 3);
    b.bus("DB", &[u1, u2], true, 1);
    b.complex(
        "mac",
        u2,
        PatTree::Op(
            Op::Add,
            vec![
                PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(1)]),
                PatTree::Arg(2),
            ],
        ),
    );
    b.build().expect("accumulator dsp is valid")
}

#[cfg(test)]
mod extra_arch_tests {
    use super::*;

    #[test]
    fn extra_machines_validate() {
        quad_vliw(4).validate().unwrap();
        accumulator_dsp().validate().unwrap();
        // Asymmetric banks really are asymmetric.
        let acc = accumulator_dsp();
        let sizes: Vec<u32> = acc.banks().iter().map(|b| b.size).collect();
        assert_eq!(sizes, vec![8, 3]);
    }
}
