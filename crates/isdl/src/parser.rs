//! Parser for the textual machine-description format.
//!
//! The format captures the subset of ISDL the AVIV back end consumes
//! (paper §II): per-unit operation lists (the RTL→SUIF-op correlation),
//! storage, explicit transfer paths, constraints, and complex instructions.
//!
//! ```text
//! machine Example {
//!     unit U1 { ops { add, sub, compl } regfile RF1[4]; }
//!     unit U2 { ops { add, sub, mul }   regfile RF2[4]; }
//!     unit U3 { ops { add, mul }        regfile RF3[4]; }
//!     memory DM;
//!     bus DB capacity 1 connects { RF1, RF2, RF3, DM };
//!     constraint forbid { U2.mul, U3.mul };
//!     constraint at_most 2 { U1.*, U2.*, U3.* };
//!     complex mac on U2 { add(mul(a, b), c) };
//! }
//! ```

use crate::model::{
    Bus, ComplexInstr, Constraint, Location, Machine, OpCap, PatTree, RegBank, SlotPattern, Unit,
};
use aviv_ir::Op;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error from [`parse_machine`], with 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsdlError {
    /// Message.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for IsdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ISDL error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl Error for IsdlError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u32),
    Punct(char),
    Eof,
}

struct Lx<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lx<'a> {
    fn new(s: &'a str) -> Self {
        Lx {
            src: s.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> IsdlError {
        IsdlError {
            msg: msg.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn next_tok(&mut self) -> Result<Tok, IsdlError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let Some(c) = self.peek() else {
            return Ok(Tok::Eof);
        };
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            Ok(Tok::Ident(
                String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
            ))
        } else if c.is_ascii_digit() {
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            text.parse()
                .map(Tok::Num)
                .map_err(|_| self.err(format!("number out of range: {text}")))
        } else if "{}[]();,.*".contains(c as char) {
            self.bump();
            Ok(Tok::Punct(c as char))
        } else {
            Err(self.err(format!("unexpected character {:?}", c as char)))
        }
    }
}

struct P<'a> {
    lx: Lx<'a>,
    tok: Tok,
}

impl<'a> P<'a> {
    fn new(s: &'a str) -> Result<Self, IsdlError> {
        let mut lx = Lx::new(s);
        let tok = lx.next_tok()?;
        Ok(P { lx, tok })
    }

    fn err(&self, msg: impl Into<String>) -> IsdlError {
        self.lx.err(msg)
    }

    fn advance(&mut self) -> Result<Tok, IsdlError> {
        let next = self.lx.next_tok()?;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn expect_ident(&mut self) -> Result<String, IsdlError> {
        match self.advance()? {
            Tok::Ident(s) => Ok(s),
            t => Err(self.err(format!("expected identifier, found {t:?}"))),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), IsdlError> {
        let got = self.expect_ident()?;
        if got == kw {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{got}`")))
        }
    }

    fn expect_num(&mut self) -> Result<u32, IsdlError> {
        match self.advance()? {
            Tok::Num(n) => Ok(n),
            t => Err(self.err(format!("expected number, found {t:?}"))),
        }
    }

    fn expect_punct(&mut self, p: char) -> Result<(), IsdlError> {
        match self.advance()? {
            Tok::Punct(q) if q == p => Ok(()),
            t => Err(self.err(format!("expected `{p}`, found {t:?}"))),
        }
    }

    fn eat_punct(&mut self, p: char) -> Result<bool, IsdlError> {
        if self.tok == Tok::Punct(p) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

/// Parse a machine description.
///
/// # Errors
///
/// Returns an [`IsdlError`] with source position for lexical and syntax
/// problems, or with position 0:0 for semantic problems found by
/// [`Machine::validate`].
pub fn parse_machine(src: &str) -> Result<Machine, IsdlError> {
    let (name, units, banks, buses, constraints, complexes) = parse_parts(src)?;
    Machine::from_parts(name, units, banks, buses, constraints, complexes).map_err(|msg| {
        IsdlError {
            msg,
            line: 0,
            col: 0,
        }
    })
}

/// Parse a machine description, checking only referential integrity.
///
/// Accepts semantically broken machines (orphan banks, dead constraints,
/// …) that [`parse_machine`] rejects, so static-analysis tools can report
/// every defect instead of stopping at the first. See
/// [`Machine::from_parts_lenient`]; the result must not be fed to the
/// code generator.
///
/// # Errors
///
/// Returns an [`IsdlError`] for lexical/syntax problems or dangling
/// references.
pub fn parse_machine_lenient(src: &str) -> Result<Machine, IsdlError> {
    let (name, units, banks, buses, constraints, complexes) = parse_parts(src)?;
    Machine::from_parts_lenient(name, units, banks, buses, constraints, complexes).map_err(|msg| {
        IsdlError {
            msg,
            line: 0,
            col: 0,
        }
    })
}

type Parts = (
    String,
    Vec<Unit>,
    Vec<RegBank>,
    Vec<Bus>,
    Vec<Constraint>,
    Vec<ComplexInstr>,
);

fn parse_parts(src: &str) -> Result<Parts, IsdlError> {
    let mut p = P::new(src)?;
    p.expect_kw("machine")?;
    let name = p.expect_ident()?;
    p.expect_punct('{')?;

    let mut units: Vec<Unit> = Vec::new();
    let mut banks: Vec<RegBank> = Vec::new();
    let mut buses: Vec<Bus> = Vec::new();
    let mut constraints: Vec<Constraint> = Vec::new();
    let mut complexes: Vec<ComplexInstr> = Vec::new();
    let mut bank_names: HashMap<String, crate::model::BankId> = HashMap::new();
    let mut unit_names: HashMap<String, crate::model::UnitId> = HashMap::new();
    let mut memory_name: Option<String> = None;

    loop {
        if p.eat_punct('}')? {
            break;
        }
        let kw = p.expect_ident()?;
        match kw.as_str() {
            "unit" => {
                let uname = p.expect_ident()?;
                p.expect_punct('{')?;
                p.expect_kw("ops")?;
                p.expect_punct('{')?;
                let mut ops = Vec::new();
                loop {
                    let opname = p.expect_ident()?;
                    let op = Op::from_mnemonic(&opname)
                        .ok_or_else(|| p.err(format!("unknown operation `{opname}`")))?;
                    ops.push(OpCap { op, cost: 1 });
                    if p.eat_punct('}')? {
                        break;
                    }
                    p.expect_punct(',')?;
                }
                p.expect_kw("regfile")?;
                let bname = p.expect_ident()?;
                p.expect_punct('[')?;
                let size = p.expect_num()?;
                p.expect_punct(']')?;
                p.expect_punct(';')?;
                p.expect_punct('}')?;
                let bank = crate::model::BankId(banks.len() as u32);
                if bank_names.insert(bname.clone(), bank).is_some() {
                    return Err(p.err(format!("duplicate regfile `{bname}`")));
                }
                banks.push(RegBank { name: bname, size });
                let uid = crate::model::UnitId(units.len() as u32);
                if unit_names.insert(uname.clone(), uid).is_some() {
                    return Err(p.err(format!("duplicate unit `{uname}`")));
                }
                units.push(Unit {
                    name: uname,
                    ops,
                    bank,
                });
            }
            "memory" => {
                let mname = p.expect_ident()?;
                p.expect_punct(';')?;
                if memory_name.replace(mname).is_some() {
                    return Err(p.err("multiple memories are not supported"));
                }
            }
            "bus" => {
                let bname = p.expect_ident()?;
                p.expect_kw("capacity")?;
                let capacity = p.expect_num()?;
                p.expect_kw("connects")?;
                p.expect_punct('{')?;
                let mut endpoints = Vec::new();
                loop {
                    let ep = p.expect_ident()?;
                    let loc = if Some(&ep) == memory_name.as_ref() {
                        Location::Mem
                    } else if let Some(&b) = bank_names.get(&ep) {
                        Location::Bank(b)
                    } else {
                        return Err(p.err(format!("unknown storage `{ep}`")));
                    };
                    endpoints.push(loc);
                    if p.eat_punct('}')? {
                        break;
                    }
                    p.expect_punct(',')?;
                }
                p.expect_punct(';')?;
                buses.push(Bus {
                    name: bname,
                    endpoints,
                    capacity,
                });
            }
            "constraint" => {
                let kind = p.expect_ident()?;
                let at_most_val = match kind.as_str() {
                    "forbid" => None,
                    "at_most" => Some(p.expect_num()?),
                    other => {
                        return Err(
                            p.err(format!("expected `forbid` or `at_most`, found `{other}`"))
                        )
                    }
                };
                p.expect_punct('{')?;
                let mut members = Vec::new();
                loop {
                    // UNIT.op | UNIT.* | bus NAME
                    let head = p.expect_ident()?;
                    if head == "bus" {
                        let bname = p.expect_ident()?;
                        let bus = buses
                            .iter()
                            .position(|b| b.name == bname)
                            .map(|i| crate::model::BusId(i as u32))
                            .ok_or_else(|| p.err(format!("unknown bus `{bname}`")))?;
                        members.push(SlotPattern::BusUse { bus });
                    } else {
                        let unit = *unit_names
                            .get(&head)
                            .ok_or_else(|| p.err(format!("unknown unit `{head}`")))?;
                        p.expect_punct('.')?;
                        let op = if p.eat_punct('*')? {
                            None
                        } else {
                            let opname = p.expect_ident()?;
                            Some(
                                Op::from_mnemonic(&opname)
                                    .ok_or_else(|| p.err(format!("unknown op `{opname}`")))?,
                            )
                        };
                        members.push(SlotPattern::UnitOp { unit, op });
                    }
                    if p.eat_punct('}')? {
                        break;
                    }
                    p.expect_punct(',')?;
                }
                p.expect_punct(';')?;
                let at_most = match at_most_val {
                    Some(k) => k,
                    None => (members.len() as u32).saturating_sub(1),
                };
                constraints.push(Constraint {
                    name: None,
                    at_most,
                    members,
                });
            }
            "complex" => {
                let cname = p.expect_ident()?;
                p.expect_kw("on")?;
                let uname = p.expect_ident()?;
                let unit = *unit_names
                    .get(&uname)
                    .ok_or_else(|| p.err(format!("unknown unit `{uname}`")))?;
                p.expect_punct('{')?;
                let mut arg_names: Vec<String> = Vec::new();
                let pattern = parse_pattern(&mut p, &mut arg_names)?;
                p.expect_punct('}')?;
                p.expect_punct(';')?;
                complexes.push(ComplexInstr {
                    name: cname,
                    unit,
                    pattern,
                    cost: 1,
                });
            }
            other => return Err(p.err(format!("unknown declaration `{other}`"))),
        }
    }

    Ok((name, units, banks, buses, constraints, complexes))
}

/// Parse `op(sub, sub, ...)` or an operand name into a pattern tree.
fn parse_pattern(p: &mut P<'_>, arg_names: &mut Vec<String>) -> Result<PatTree, IsdlError> {
    let head = p.expect_ident()?;
    if p.eat_punct('(')? {
        let op = Op::from_mnemonic(&head)
            .ok_or_else(|| p.err(format!("unknown operation `{head}` in pattern")))?;
        let mut subs = Vec::new();
        loop {
            subs.push(parse_pattern(p, arg_names)?);
            if p.eat_punct(')')? {
                break;
            }
            p.expect_punct(',')?;
        }
        if subs.len() != op.arity() {
            return Err(p.err(format!(
                "pattern op `{head}` expects {} operands, found {}",
                op.arity(),
                subs.len()
            )));
        }
        Ok(PatTree::Op(op, subs))
    } else {
        // Operand name; repeated names share an index.
        let idx = match arg_names.iter().position(|n| n == &head) {
            Some(i) => i,
            None => {
                arg_names.push(head);
                arg_names.len() - 1
            }
        };
        Ok(PatTree::Arg(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::UnitId;

    const EXAMPLE: &str = "
        machine Example {
            // the paper's Fig. 3 target
            unit U1 { ops { add, sub, compl } regfile RF1[4]; }
            unit U2 { ops { add, sub, mul }   regfile RF2[4]; }
            unit U3 { ops { add, mul }        regfile RF3[4]; }
            memory DM;
            bus DB capacity 1 connects { RF1, RF2, RF3, DM };
        }";

    #[test]
    fn parses_the_example_architecture() {
        let m = parse_machine(EXAMPLE).unwrap();
        assert_eq!(m.name, "Example");
        assert_eq!(m.units().len(), 3);
        assert!(m.unit(UnitId(0)).can_do(Op::Compl));
        assert!(m.unit(UnitId(2)).can_do(Op::Mul));
        assert!(!m.unit(UnitId(2)).can_do(Op::Sub));
        assert_eq!(m.buses().len(), 1);
        assert_eq!(m.buses()[0].capacity, 1);
        assert_eq!(m.buses()[0].endpoints.len(), 4);
    }

    #[test]
    fn parses_constraints_and_complexes() {
        let src = "
        machine C {
            unit U1 { ops { add, mul } regfile R1[4]; }
            unit U2 { ops { add, mul } regfile R2[4]; }
            memory DM;
            bus DB capacity 2 connects { R1, R2, DM };
            constraint forbid { U1.mul, U2.mul };
            constraint at_most 1 { U1.*, bus DB };
            complex mac on U2 { add(mul(a, b), c) };
            complex sq on U1 { mul(x, x) };
        }";
        let m = parse_machine(src).unwrap();
        assert_eq!(m.constraints().len(), 2);
        assert_eq!(m.constraints()[0].at_most, 1);
        assert_eq!(m.constraints()[0].members.len(), 2);
        assert_eq!(m.complexes().len(), 2);
        assert_eq!(m.complexes()[0].pattern.arg_count(), 3);
        assert_eq!(m.complexes()[1].pattern.arg_count(), 1);
        assert_eq!(m.complexes()[1].pattern.eval(&[7]), 49);
    }

    #[test]
    fn rejects_unknown_ops_and_storages() {
        assert!(parse_machine(
            "machine X { unit U1 { ops { frobnicate } regfile R[4]; } memory DM; bus B capacity 1 connects { R, DM }; }"
        )
        .is_err());
        assert!(parse_machine(
            "machine X { unit U1 { ops { add } regfile R[4]; } memory DM; bus B capacity 1 connects { R, NOPE }; }"
        )
        .is_err());
    }

    #[test]
    fn rejects_semantic_problems_via_validation() {
        // Bank never connected to memory.
        let e = parse_machine(
            "machine X {
                unit U1 { ops { add } regfile R1[4]; }
                unit U2 { ops { add } regfile R2[4]; }
                memory DM;
                bus B capacity 1 connects { R1, DM };
            }",
        )
        .unwrap_err();
        assert!(e.msg.contains("unreachable"), "{e}");
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_machine("machine X { unit }").unwrap_err();
        assert!(e.line == 1 && e.col > 1);
    }

    #[test]
    fn round_trips_through_describe() {
        let m = parse_machine(EXAMPLE).unwrap();
        let d = m.describe();
        for u in ["U1", "U2", "U3"] {
            assert!(d.contains(u));
        }
    }
}
