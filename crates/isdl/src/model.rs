//! The target-processor model extracted from an ISDL description.
//!
//! The paper drives code generation from an ISDL machine description that
//! supplies: the operations each functional unit can perform (via each
//! instruction's RTL), the storage resources (one register file per unit,
//! data memory), the explicit data-transfer paths (buses), the constraints
//! that make instruction fields non-orthogonal, and optional complex
//! instructions. [`Machine`] captures exactly that information; the
//! derived databases of §II live in [`crate::db`].

use aviv_ir::Op;
use std::fmt;

/// Functional-unit index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub u32);

/// Register-bank index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankId(pub u32);

/// Bus index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BusId(pub u32);

impl UnitId {
    /// Raw vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl BankId {
    /// Raw vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl BusId {
    /// Raw vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}
impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rf{}", self.0)
    }
}
impl fmt::Display for BusId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus{}", self.0)
    }
}

/// A value's home: a register bank or the data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Location {
    /// A register bank.
    Bank(BankId),
    /// The (single) data memory.
    Mem,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Bank(b) => write!(f, "{b}"),
            Location::Mem => write!(f, "DM"),
        }
    }
}

/// One functional unit: a name, the operations it implements, and its
/// private register file (the paper's units "each contain their own
/// register file").
#[derive(Debug, Clone)]
pub struct Unit {
    /// Unit name from the description (e.g. `U1`).
    pub name: String,
    /// Operations this unit can execute, each with a size cost in
    /// instruction words (1 for everything in the paper's machines).
    pub ops: Vec<OpCap>,
    /// The unit's register file.
    pub bank: BankId,
}

impl Unit {
    /// Whether the unit implements `op`.
    pub fn can_do(&self, op: Op) -> bool {
        self.ops.iter().any(|c| c.op == op)
    }
}

/// An operation capability of a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCap {
    /// The machine-independent operation implemented.
    pub op: Op,
    /// Size cost in instruction words (paper machines: always 1).
    pub cost: u32,
}

/// A register file.
#[derive(Debug, Clone)]
pub struct RegBank {
    /// Bank name from the description (e.g. `RF1`).
    pub name: String,
    /// Number of registers. The paper's experiments use 4 and 2.
    pub size: u32,
}

/// A data-transfer resource connecting storage locations. A bus can carry
/// at most `capacity` transfers per instruction; the example architecture
/// of the paper's Fig. 3 has a single databus with capacity 1.
#[derive(Debug, Clone)]
pub struct Bus {
    /// Bus name from the description (e.g. `DB`).
    pub name: String,
    /// Locations this bus connects (any-to-any among them).
    pub endpoints: Vec<Location>,
    /// Transfers per instruction this bus supports.
    pub capacity: u32,
}

impl Bus {
    /// Whether the bus can move a value from `from` to `to` in one hop.
    pub fn connects(&self, from: Location, to: Location) -> bool {
        from != to && self.endpoints.contains(&from) && self.endpoints.contains(&to)
    }
}

/// One side of a constraint: an instruction-slot usage pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPattern {
    /// Unit `unit` executing `op` (or any op when `op` is `None`).
    UnitOp {
        /// The unit.
        unit: UnitId,
        /// Specific operation, or any.
        op: Option<Op>,
    },
    /// Any transfer occupying the given bus.
    BusUse {
        /// The bus.
        bus: BusId,
    },
}

/// An ISDL constraint restricting which slot usages may co-occur in one
/// instruction. ISDL treats fields as orthogonal and subtracts illegal
/// combinations (unlike nML, which enumerates legal ones) — see §V-C.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Optional label from the description (diagnostics only).
    pub name: Option<String>,
    /// At most this many of `members` may appear together. A `forbid`
    /// constraint over n members is `AtMost(n - 1)`.
    pub at_most: u32,
    /// The slot patterns counted against `at_most`.
    pub members: Vec<SlotPattern>,
}

/// A tree pattern for a complex instruction (e.g. multiply-accumulate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatTree {
    /// An operation applied to sub-patterns.
    Op(Op, Vec<PatTree>),
    /// A pattern operand, numbered by first occurrence (repetition allowed:
    /// `mul(a, a)` squares its operand).
    Arg(usize),
}

impl PatTree {
    /// Number of distinct operands the pattern consumes.
    pub fn arg_count(&self) -> usize {
        fn walk(p: &PatTree, max: &mut Option<usize>) {
            match p {
                PatTree::Arg(i) => {
                    *max = Some(max.map_or(*i, |m: usize| m.max(*i)));
                }
                PatTree::Op(_, args) => args.iter().for_each(|a| walk(a, max)),
            }
        }
        let mut max = None;
        walk(self, &mut max);
        max.map_or(0, |m| m + 1)
    }

    /// Number of operation nodes in the pattern.
    pub fn op_count(&self) -> usize {
        match self {
            PatTree::Arg(_) => 0,
            PatTree::Op(_, args) => 1 + args.iter().map(PatTree::op_count).sum::<usize>(),
        }
    }

    /// Evaluate the pattern on operand values (the simulator's semantics
    /// for complex instructions).
    ///
    /// # Panics
    ///
    /// Panics if `args.len() < self.arg_count()`.
    pub fn eval(&self, args: &[i64]) -> i64 {
        match self {
            PatTree::Arg(i) => args[*i],
            PatTree::Op(op, subs) => {
                let vals: Vec<i64> = subs.iter().map(|s| s.eval(args)).collect();
                op.eval(&vals)
            }
        }
    }
}

/// A complex instruction: a unit executes a whole expression-tree pattern
/// in one instruction slot (§III-B: "additional nodes and edges
/// corresponding to the matched complex instructions are added").
#[derive(Debug, Clone)]
pub struct ComplexInstr {
    /// Mnemonic (e.g. `mac`).
    pub name: String,
    /// The unit that executes it.
    pub unit: UnitId,
    /// The expression pattern covered.
    pub pattern: PatTree,
    /// Size cost in instruction words.
    pub cost: u32,
}

/// A complete target-processor description.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Machine name.
    pub name: String,
    units: Vec<Unit>,
    banks: Vec<RegBank>,
    buses: Vec<Bus>,
    constraints: Vec<Constraint>,
    complexes: Vec<ComplexInstr>,
}

impl Machine {
    /// Build a machine from parts; use [`MachineBuilder`] for ergonomic
    /// construction, or [`crate::parse_machine`] for the textual format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found — see
    /// [`Machine::validate`].
    pub fn from_parts(
        name: String,
        units: Vec<Unit>,
        banks: Vec<RegBank>,
        buses: Vec<Bus>,
        constraints: Vec<Constraint>,
        complexes: Vec<ComplexInstr>,
    ) -> Result<Machine, String> {
        let m = Machine {
            name,
            units,
            banks,
            buses,
            constraints,
            complexes,
        };
        m.validate()?;
        Ok(m)
    }

    /// Build a machine checking only referential integrity (no dangling
    /// unit/bank/bus indices), skipping the semantic checks in
    /// [`Machine::validate`]. Intended for static-analysis tooling that
    /// wants to *report* semantic defects (orphan banks, dead
    /// constraints, …) rather than refuse to construct the machine.
    ///
    /// Machines built this way must not be fed to the code generator; the
    /// pipeline relies on the full [`Machine::validate`] guarantees.
    ///
    /// # Errors
    ///
    /// Returns a description of the first dangling reference found — see
    /// [`Machine::validate_refs`].
    pub fn from_parts_lenient(
        name: String,
        units: Vec<Unit>,
        banks: Vec<RegBank>,
        buses: Vec<Bus>,
        constraints: Vec<Constraint>,
        complexes: Vec<ComplexInstr>,
    ) -> Result<Machine, String> {
        let m = Machine {
            name,
            units,
            banks,
            buses,
            constraints,
            complexes,
        };
        m.validate_refs()?;
        Ok(m)
    }

    /// The functional units.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// The register banks.
    pub fn banks(&self) -> &[RegBank] {
        &self.banks
    }

    /// The buses.
    pub fn buses(&self) -> &[Bus] {
        &self.buses
    }

    /// The instruction-legality constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The complex instructions.
    pub fn complexes(&self) -> &[ComplexInstr] {
        &self.complexes
    }

    /// Access a unit.
    pub fn unit(&self, u: UnitId) -> &Unit {
        &self.units[u.index()]
    }

    /// Access a bank.
    pub fn bank(&self, b: BankId) -> &RegBank {
        &self.banks[b.index()]
    }

    /// Access a bus.
    pub fn bus(&self, b: BusId) -> &Bus {
        &self.buses[b.index()]
    }

    /// The register bank owned by unit `u`.
    pub fn bank_of(&self, u: UnitId) -> BankId {
        self.units[u.index()].bank
    }

    /// Find a unit by name.
    pub fn unit_by_name(&self, name: &str) -> Option<UnitId> {
        self.units
            .iter()
            .position(|u| u.name == name)
            .map(|i| UnitId(i as u32))
    }

    /// Find a bank by name.
    pub fn bank_by_name(&self, name: &str) -> Option<BankId> {
        self.banks
            .iter()
            .position(|b| b.name == name)
            .map(|i| BankId(i as u32))
    }

    /// Find a bus by name.
    pub fn bus_by_name(&self, name: &str) -> Option<BusId> {
        self.buses
            .iter()
            .position(|b| b.name == name)
            .map(|i| BusId(i as u32))
    }

    /// All storage locations: every bank plus memory, in a stable order.
    pub fn locations(&self) -> Vec<Location> {
        let mut v: Vec<Location> = (0..self.banks.len() as u32)
            .map(|i| Location::Bank(BankId(i)))
            .collect();
        v.push(Location::Mem);
        v
    }

    /// Structural validation; called by every constructor.
    ///
    /// # Errors
    ///
    /// Returns the first problem found: no units, empty unit op lists,
    /// dangling bank/bus/unit references, degenerate constraints, or
    /// malformed complex patterns.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_refs()?;
        if self.units.is_empty() {
            return Err("machine has no functional units".into());
        }
        let mut names = std::collections::HashSet::new();
        for u in &self.units {
            if !names.insert(&u.name) {
                return Err(format!("duplicate unit name {}", u.name));
            }
            if u.ops.is_empty() {
                return Err(format!("unit {} implements no operations", u.name));
            }
            for c in &u.ops {
                if c.op.is_leaf() || c.op.is_store() {
                    return Err(format!(
                        "unit {} lists non-computational op {}",
                        u.name, c.op
                    ));
                }
            }
        }
        for b in &self.banks {
            if b.size == 0 {
                return Err(format!("bank {} has zero registers", b.name));
            }
        }
        for bus in &self.buses {
            if bus.endpoints.len() < 2 {
                return Err(format!("bus {} connects fewer than 2 locations", bus.name));
            }
            if bus.capacity == 0 {
                return Err(format!("bus {} has zero capacity", bus.name));
            }
        }
        for c in &self.constraints {
            if c.members.len() < 2 {
                return Err("constraint with fewer than 2 members".into());
            }
            if c.at_most as usize >= c.members.len() {
                return Err("constraint that can never trigger".into());
            }
            for m in &c.members {
                if let SlotPattern::UnitOp { unit, op: Some(op) } = *m {
                    if !self.units[unit.index()].can_do(op) {
                        return Err(format!(
                            "constraint references op {op} not on unit {}",
                            self.units[unit.index()].name
                        ));
                    }
                }
            }
        }
        for cx in &self.complexes {
            if cx.pattern.op_count() < 1 {
                return Err(format!("complex {} covers no operation", cx.name));
            }
        }
        // Every bank must be able to exchange values with memory through
        // some bus path; otherwise leaves can never be loaded or results
        // stored. Checked via the same BFS the transfer database uses.
        let reach_from_mem = self.reachable_from(Location::Mem);
        for (i, b) in self.banks.iter().enumerate() {
            let loc = Location::Bank(BankId(i as u32));
            if !reach_from_mem.contains(&loc) {
                return Err(format!("bank {} unreachable from memory", b.name));
            }
            if !self.reachable_from(loc).contains(&Location::Mem) {
                return Err(format!("memory unreachable from bank {}", b.name));
            }
        }
        Ok(())
    }

    /// Referential-integrity check only: every unit/bank/bus index stored
    /// anywhere in the machine must be in range. This is the minimum
    /// needed for read-only traversals (lints, pretty-printers) to be
    /// panic-free; it deliberately accepts machines that
    /// [`Machine::validate`] rejects.
    ///
    /// # Errors
    ///
    /// Returns the first dangling reference found.
    pub fn validate_refs(&self) -> Result<(), String> {
        for u in &self.units {
            if u.bank.index() >= self.banks.len() {
                return Err(format!("unit {} references missing bank", u.name));
            }
        }
        for bus in &self.buses {
            for &e in &bus.endpoints {
                if let Location::Bank(b) = e {
                    if b.index() >= self.banks.len() {
                        return Err(format!("bus {} references missing bank", bus.name));
                    }
                }
            }
        }
        for c in &self.constraints {
            for m in &c.members {
                match *m {
                    SlotPattern::UnitOp { unit, .. } => {
                        if unit.index() >= self.units.len() {
                            return Err("constraint references missing unit".into());
                        }
                    }
                    SlotPattern::BusUse { bus } => {
                        if bus.index() >= self.buses.len() {
                            return Err("constraint references missing bus".into());
                        }
                    }
                }
            }
        }
        for cx in &self.complexes {
            if cx.unit.index() >= self.units.len() {
                return Err(format!("complex {} references missing unit", cx.name));
            }
        }
        Ok(())
    }

    /// Every storage location reachable from `start` by chaining bus
    /// hops (including `start` itself). The same BFS the transfer
    /// database and [`Machine::validate`] use; public so analysis tools
    /// can reason about connectivity without rebuilding it.
    pub fn reachable_from(&self, start: Location) -> Vec<Location> {
        let mut seen = vec![start];
        let mut queue = vec![start];
        while let Some(loc) = queue.pop() {
            for bus in &self.buses {
                if bus.endpoints.contains(&loc) {
                    for &e in &bus.endpoints {
                        if !seen.contains(&e) {
                            seen.push(e);
                            queue.push(e);
                        }
                    }
                }
            }
        }
        seen
    }

    /// Human-readable summary (used by the figures binary for Fig. 3).
    pub fn describe(&self) -> String {
        let mut s = format!("machine {}\n", self.name);
        for u in &self.units {
            let ops: Vec<&str> = u.ops.iter().map(|c| c.op.mnemonic()).collect();
            let bank = &self.banks[u.bank.index()];
            s.push_str(&format!(
                "  unit {:4} ops {{{}}} regfile {}[{}]\n",
                u.name,
                ops.join(", "),
                bank.name,
                bank.size
            ));
        }
        for b in &self.buses {
            let eps: Vec<String> = b
                .endpoints
                .iter()
                .map(|e| match e {
                    Location::Bank(id) => self.banks[id.index()].name.clone(),
                    Location::Mem => "DM".to_string(),
                })
                .collect();
            s.push_str(&format!(
                "  bus {} capacity {} connects {{{}}}\n",
                b.name,
                b.capacity,
                eps.join(", ")
            ));
        }
        for c in &self.constraints {
            s.push_str(&format!(
                "  constraint at_most {} of {} members\n",
                c.at_most,
                c.members.len()
            ));
        }
        for cx in &self.complexes {
            s.push_str(&format!(
                "  complex {} on {} covering {} ops\n",
                cx.name,
                self.units[cx.unit.index()].name,
                cx.pattern.op_count()
            ));
        }
        s
    }
}

/// Incremental builder for [`Machine`]; each `unit` call creates the unit
/// together with its private register file.
#[derive(Debug, Default)]
pub struct MachineBuilder {
    name: String,
    units: Vec<Unit>,
    banks: Vec<RegBank>,
    buses: Vec<Bus>,
    constraints: Vec<Constraint>,
    complexes: Vec<ComplexInstr>,
}

impl MachineBuilder {
    /// Start building a machine called `name`.
    pub fn new(name: &str) -> Self {
        MachineBuilder {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    /// Add a unit with its own register file of `bank_size` registers,
    /// implementing `ops` (cost 1 each). Returns the new unit's id.
    pub fn unit(&mut self, name: &str, ops: &[Op], bank_size: u32) -> UnitId {
        let bank = BankId(self.banks.len() as u32);
        self.banks.push(RegBank {
            name: format!("RF{}", self.banks.len() + 1),
            size: bank_size,
        });
        let id = UnitId(self.units.len() as u32);
        self.units.push(Unit {
            name: name.to_owned(),
            ops: ops.iter().map(|&op| OpCap { op, cost: 1 }).collect(),
            bank,
        });
        id
    }

    /// Add a bus connecting the register files of `units` (and memory when
    /// `with_mem`). Returns the bus id.
    pub fn bus(&mut self, name: &str, units: &[UnitId], with_mem: bool, capacity: u32) -> BusId {
        let mut endpoints: Vec<Location> = units
            .iter()
            .map(|&u| Location::Bank(self.units[u.index()].bank))
            .collect();
        if with_mem {
            endpoints.push(Location::Mem);
        }
        let id = BusId(self.buses.len() as u32);
        self.buses.push(Bus {
            name: name.to_owned(),
            endpoints,
            capacity,
        });
        id
    }

    /// Add a constraint.
    pub fn constraint(&mut self, at_most: u32, members: Vec<SlotPattern>) -> &mut Self {
        self.constraints.push(Constraint {
            name: None,
            at_most,
            members,
        });
        self
    }

    /// Add a complex instruction.
    pub fn complex(&mut self, name: &str, unit: UnitId, pattern: PatTree) -> &mut Self {
        self.complex_with_cost(name, unit, pattern, 1)
    }

    /// Add a complex instruction with an explicit size cost.
    pub fn complex_with_cost(
        &mut self,
        name: &str,
        unit: UnitId,
        pattern: PatTree,
        cost: u32,
    ) -> &mut Self {
        self.complexes.push(ComplexInstr {
            name: name.to_owned(),
            unit,
            pattern,
            cost,
        });
        self
    }

    /// Finish, validating the machine.
    ///
    /// # Errors
    ///
    /// Propagates [`Machine::validate`] failures.
    pub fn build(self) -> Result<Machine, String> {
        Machine::from_parts(
            self.name,
            self.units,
            self.banks,
            self.buses,
            self.constraints,
            self.complexes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Machine {
        let mut b = MachineBuilder::new("tiny");
        let u1 = b.unit("U1", &[Op::Add, Op::Sub], 4);
        let u2 = b.unit("U2", &[Op::Add, Op::Mul], 4);
        b.bus("DB", &[u1, u2], true, 1);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_machine() {
        let m = tiny();
        assert_eq!(m.units().len(), 2);
        assert_eq!(m.banks().len(), 2);
        assert!(m.unit(UnitId(0)).can_do(Op::Sub));
        assert!(!m.unit(UnitId(1)).can_do(Op::Sub));
        assert_eq!(m.unit_by_name("U2"), Some(UnitId(1)));
        assert_eq!(m.locations().len(), 3);
    }

    #[test]
    fn disconnected_bank_rejected() {
        let mut b = MachineBuilder::new("bad");
        let u1 = b.unit("U1", &[Op::Add], 4);
        let _u2 = b.unit("U2", &[Op::Add], 4);
        // Bus reaches only U1's bank and memory; U2's bank is stranded.
        b.bus("DB", &[u1], true, 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn zero_sized_bank_rejected() {
        let mut b = MachineBuilder::new("bad");
        let u1 = b.unit("U1", &[Op::Add], 0);
        b.bus("DB", &[u1], true, 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn constraint_validation() {
        let mut b = MachineBuilder::new("c");
        let u1 = b.unit("U1", &[Op::Add], 4);
        let u2 = b.unit("U2", &[Op::Mul], 4);
        b.bus("DB", &[u1, u2], true, 1);
        b.constraint(
            1,
            vec![
                SlotPattern::UnitOp {
                    unit: u1,
                    op: Some(Op::Add),
                },
                SlotPattern::UnitOp {
                    unit: u2,
                    op: Some(Op::Mul),
                },
            ],
        );
        assert!(b.build().is_ok());

        let mut b = MachineBuilder::new("c2");
        let u1 = b.unit("U1", &[Op::Add], 4);
        let u2 = b.unit("U2", &[Op::Mul], 4);
        b.bus("DB", &[u1, u2], true, 1);
        // at_most >= member count never triggers.
        b.constraint(
            2,
            vec![
                SlotPattern::UnitOp { unit: u1, op: None },
                SlotPattern::UnitOp { unit: u2, op: None },
            ],
        );
        assert!(b.build().is_err());
    }

    #[test]
    fn pattern_tree_helpers() {
        // mac = add(mul(a0, a1), a2)
        let mac = PatTree::Op(
            Op::Add,
            vec![
                PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(1)]),
                PatTree::Arg(2),
            ],
        );
        assert_eq!(mac.arg_count(), 3);
        assert_eq!(mac.op_count(), 2);
        assert_eq!(mac.eval(&[3, 4, 5]), 17);
        // square = mul(a0, a0): repeated args count once.
        let sq = PatTree::Op(Op::Mul, vec![PatTree::Arg(0), PatTree::Arg(0)]);
        assert_eq!(sq.arg_count(), 1);
        assert_eq!(sq.eval(&[9]), 81);
    }

    #[test]
    fn describe_mentions_everything() {
        let m = tiny();
        let d = m.describe();
        assert!(d.contains("U1") && d.contains("U2") && d.contains("DB"));
        assert!(d.contains("add"));
    }
}

/// Design-space editing: the paper's methodology modifies candidate
/// machines ("we changed the target architecture of Figure 3 by removing
/// the SUB operation from functional unit U1, and completely removing
/// functional unit U3"). These constructors derive a new validated
/// machine from an existing one.
impl Machine {
    /// A copy without the named unit (its register file is removed too;
    /// buses drop the orphaned endpoint).
    ///
    /// # Errors
    ///
    /// Fails when the unit does not exist, is referenced by a constraint
    /// or complex instruction, or when the result is invalid (e.g. no
    /// units left).
    pub fn without_unit(&self, unit_name: &str) -> Result<Machine, String> {
        let uid = self
            .unit_by_name(unit_name)
            .ok_or_else(|| format!("no unit named {unit_name}"))?;
        let dead_bank = self.bank_of(uid);
        for c in &self.constraints {
            for m in &c.members {
                if matches!(m, SlotPattern::UnitOp { unit, .. } if *unit == uid) {
                    return Err(format!("constraint references {unit_name}"));
                }
            }
        }
        if self.complexes.iter().any(|cx| cx.unit == uid) {
            return Err(format!("complex instruction references {unit_name}"));
        }
        let remap_unit = |u: UnitId| UnitId(if u.0 > uid.0 { u.0 - 1 } else { u.0 });
        let remap_bank = |b: BankId| BankId(if b.0 > dead_bank.0 { b.0 - 1 } else { b.0 });
        let units: Vec<Unit> = self
            .units
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != uid.index())
            .map(|(_, u)| Unit {
                name: u.name.clone(),
                ops: u.ops.clone(),
                bank: remap_bank(u.bank),
            })
            .collect();
        let banks: Vec<RegBank> = self
            .banks
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != dead_bank.index())
            .map(|(_, b)| b.clone())
            .collect();
        let buses: Vec<Bus> = self
            .buses
            .iter()
            .map(|b| Bus {
                name: b.name.clone(),
                endpoints: b
                    .endpoints
                    .iter()
                    .filter(|&&e| e != Location::Bank(dead_bank))
                    .map(|&e| match e {
                        Location::Bank(bk) => Location::Bank(remap_bank(bk)),
                        Location::Mem => Location::Mem,
                    })
                    .collect(),
                capacity: b.capacity,
            })
            .collect();
        let constraints: Vec<Constraint> = self
            .constraints
            .iter()
            .map(|c| Constraint {
                name: c.name.clone(),
                at_most: c.at_most,
                members: c
                    .members
                    .iter()
                    .map(|m| match *m {
                        SlotPattern::UnitOp { unit, op } => SlotPattern::UnitOp {
                            unit: remap_unit(unit),
                            op,
                        },
                        other => other,
                    })
                    .collect(),
            })
            .collect();
        let complexes: Vec<ComplexInstr> = self
            .complexes
            .iter()
            .map(|cx| ComplexInstr {
                name: cx.name.clone(),
                unit: remap_unit(cx.unit),
                pattern: cx.pattern.clone(),
                cost: cx.cost,
            })
            .collect();
        Machine::from_parts(
            self.name.clone(),
            units,
            banks,
            buses,
            constraints,
            complexes,
        )
    }

    /// A copy with `op` removed from the named unit.
    ///
    /// # Errors
    ///
    /// Fails when the unit or op is missing, a constraint names the
    /// (unit, op) pair, or the unit would be left without operations.
    pub fn without_op(&self, unit_name: &str, op: aviv_ir::Op) -> Result<Machine, String> {
        let uid = self
            .unit_by_name(unit_name)
            .ok_or_else(|| format!("no unit named {unit_name}"))?;
        if !self.units[uid.index()].can_do(op) {
            return Err(format!("{unit_name} does not implement {op}"));
        }
        for c in &self.constraints {
            for m in &c.members {
                if matches!(m, SlotPattern::UnitOp { unit, op: Some(o) }
                            if *unit == uid && *o == op)
                {
                    return Err(format!("constraint references {unit_name}.{op}"));
                }
            }
        }
        let mut units = self.units.clone();
        units[uid.index()].ops.retain(|c| c.op != op);
        Machine::from_parts(
            self.name.clone(),
            units,
            self.banks.clone(),
            self.buses.clone(),
            self.constraints.clone(),
            self.complexes.clone(),
        )
    }

    /// A copy with every register file resized to `regs` (the paper's
    /// 4-vs-2 experiments).
    ///
    /// # Errors
    ///
    /// Fails for `regs == 0`.
    pub fn with_bank_size(&self, regs: u32) -> Result<Machine, String> {
        let banks: Vec<RegBank> = self
            .banks
            .iter()
            .map(|b| RegBank {
                name: b.name.clone(),
                size: regs,
            })
            .collect();
        Machine::from_parts(
            self.name.clone(),
            self.units.clone(),
            banks,
            self.buses.clone(),
            self.constraints.clone(),
            self.complexes.clone(),
        )
    }

    /// A copy under a new name (useful when deriving variants).
    pub fn renamed(&self, name: &str) -> Machine {
        let mut m = self.clone();
        m.name = name.to_string();
        m
    }
}

#[cfg(test)]
mod edit_tests {
    use super::*;
    use aviv_ir::Op;

    fn fig3_like() -> Machine {
        let mut b = MachineBuilder::new("Example");
        let u1 = b.unit("U1", &[Op::Add, Op::Sub, Op::Compl], 4);
        let u2 = b.unit("U2", &[Op::Add, Op::Sub, Op::Mul], 4);
        let u3 = b.unit("U3", &[Op::Add, Op::Mul], 4);
        b.bus("DB", &[u1, u2, u3], true, 1);
        b.build().unwrap()
    }

    /// The paper's Table II derivation, done programmatically.
    #[test]
    fn derive_arch_two_from_fig3() {
        let m = fig3_like()
            .without_op("U1", Op::Sub)
            .unwrap()
            .without_unit("U3")
            .unwrap()
            .renamed("ArchII");
        assert_eq!(m.units().len(), 2);
        assert_eq!(m.banks().len(), 2);
        assert!(!m.units()[0].can_do(Op::Sub));
        assert!(m.units()[1].can_do(Op::Mul));
        // Bus endpoints shrank with the removed bank.
        assert_eq!(m.buses()[0].endpoints.len(), 3);
        m.validate().unwrap();
    }

    #[test]
    fn resize_banks() {
        let m = fig3_like().with_bank_size(2).unwrap();
        assert!(m.banks().iter().all(|b| b.size == 2));
        assert!(fig3_like().with_bank_size(0).is_err());
    }

    #[test]
    fn removals_are_guarded() {
        let m = fig3_like();
        assert!(m.without_unit("U9").is_err());
        assert!(m.without_op("U3", Op::Sub).is_err());
        // Removing every unit is invalid.
        let one = m.without_unit("U3").unwrap().without_unit("U2").unwrap();
        assert!(one.without_unit("U1").is_err());
    }

    #[test]
    fn unit_ids_remap_in_constraints_and_complexes() {
        let mut b = MachineBuilder::new("C");
        let u1 = b.unit("U1", &[Op::Add], 4);
        let u2 = b.unit("U2", &[Op::Mul, Op::Add], 4);
        let u3 = b.unit("U3", &[Op::Mul], 4);
        b.bus("DB", &[u1, u2, u3], true, 1);
        b.constraint(
            1,
            vec![
                SlotPattern::UnitOp {
                    unit: u2,
                    op: Some(Op::Mul),
                },
                SlotPattern::UnitOp {
                    unit: u3,
                    op: Some(Op::Mul),
                },
            ],
        );
        let m = b.build().unwrap();
        // Removing U1 shifts U2/U3 down by one; the constraint must follow.
        let m2 = m.without_unit("U1").unwrap();
        match m2.constraints()[0].members[0] {
            SlotPattern::UnitOp { unit, .. } => assert_eq!(unit, UnitId(0)),
            _ => panic!("expected unit pattern"),
        }
        m2.validate().unwrap();
    }
}
