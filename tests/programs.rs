//! A corpus of complete programs — loops, nested control flow, dynamic
//! memory — each compiled for several machines and differentially checked
//! against the reference interpreter on multiple inputs.

use aviv::CodegenOptions;
use aviv_ir::parse_function;
use aviv_isdl::archs;
use aviv_vm::check_function;

fn check_all(src: &str, cases: &[&[i64]]) {
    let f = parse_function(src).unwrap();
    for machine in [
        archs::example_arch(4),
        archs::arch_two(4),
        archs::wide_arch(4),
    ] {
        for args in cases {
            let name = machine.name.clone();
            check_function(
                &f,
                machine.clone(),
                CodegenOptions::heuristics_on(),
                args,
                &[],
            )
            .unwrap_or_else(|e| panic!("{name} args {args:?}: {e}"));
        }
    }
}

#[test]
fn fibonacci_iterative() {
    let src = "func fib(n) {
        a = 0;
        b = 1;
        i = 0;
    head:
        if (i >= n) goto done;
        t = a + b;
        a = b;
        b = t;
        i = i + 1;
        goto head;
    done:
        return a;
    }";
    check_all(src, &[&[0], &[1], &[7], &[15]]);
    // Sanity: fib(7) = 13.
    let f = parse_function(src).unwrap();
    assert_eq!(
        aviv_ir::run_function(&f, &[7]).unwrap().return_value,
        Some(13)
    );
}

#[test]
fn collatz_steps() {
    let src = "func collatz(n) {
        steps = 0;
    head:
        if (n <= 1) goto done;
        h = n >> 1;
        r = n - (h + h);
        if (r == 0) goto even;
        n = n * 3 + 1;
        goto count;
    even:
        n = h;
    count:
        steps = steps + 1;
        goto head;
    done:
        return steps;
    }";
    // `>>` exists only on the wide machine among the defaults.
    let f = parse_function(src).unwrap();
    for n in [1i64, 6, 27] {
        check_function(
            &f,
            archs::wide_arch(4),
            CodegenOptions::heuristics_on(),
            &[n],
            &[],
        )
        .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
    assert_eq!(
        aviv_ir::run_function(&f, &[6]).unwrap().return_value,
        Some(8)
    );
}

#[test]
fn integer_square_root() {
    // Newton iteration with integer division emulated by subtraction-free
    // guess refinement (the paper archs lack div; use the wide arch).
    let src = "func isqrt(n) {
        x = n;
        if (n <= 1) goto done;
        x = n / 2;
    refine:
        y = (x + n / x) / 2;
        if (y >= x) goto done;
        x = y;
        goto refine;
    done:
        return x;
    }";
    let f = parse_function(src).unwrap();
    for n in [0i64, 1, 2, 15, 16, 17, 99, 100, 10_000] {
        check_function(
            &f,
            archs::wide_arch(4),
            CodegenOptions::heuristics_on(),
            &[n],
            &[],
        )
        .unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
    assert_eq!(
        aviv_ir::run_function(&f, &[99]).unwrap().return_value,
        Some(9)
    );
}

#[test]
fn bubble_sort_in_memory() {
    let src = "func sort(base, n) {
        i = 0;
    outer:
        if (i >= n) goto done;
        j = 0;
        limit = n - i;
        limit = limit - 1;
    inner:
        if (j >= limit) goto next_i;
        a = mem[base + j];
        b = mem[base + j + 1];
        if (a <= b) goto no_swap;
        mem[base + j] = b;
        mem[base + j + 1] = a;
    no_swap:
        j = j + 1;
        goto inner;
    next_i:
        i = i + 1;
        goto outer;
    done:
        return 0;
    }";
    let f = parse_function(src).unwrap();
    let base = 4096i64;
    let data = [5i64, -2, 9, 0, 3, 3, -7];
    let mem: Vec<(i64, i64)> = data
        .iter()
        .enumerate()
        .map(|(i, &v)| (base + i as i64, v))
        .collect();
    check_function(
        &f,
        archs::example_arch(4),
        CodegenOptions::heuristics_on(),
        &[base, data.len() as i64],
        &mem,
    )
    .unwrap();
    // Interpreter agrees the result is sorted.
    let mut interp = aviv_ir::Interpreter::new(&f);
    interp.args(&[base, data.len() as i64]);
    for &(a, v) in &mem {
        interp.poke(a, v);
    }
    let result = interp.run().unwrap();
    let sorted: Vec<i64> = (0..data.len() as i64)
        .map(|i| result.memory[&(base + i)])
        .collect();
    let mut want = data.to_vec();
    want.sort_unstable();
    assert_eq!(sorted, want);
}

#[test]
fn matrix_2x2_multiply() {
    // C = A * B over mem[]: A at base, B at base+4, C at base+8.
    let src = "func matmul(base) {
        a00 = mem[base];     a01 = mem[base + 1];
        a10 = mem[base + 2]; a11 = mem[base + 3];
        b00 = mem[base + 4]; b01 = mem[base + 5];
        b10 = mem[base + 6]; b11 = mem[base + 7];
        mem[base + 8]  = a00 * b00 + a01 * b10;
        mem[base + 9]  = a00 * b01 + a01 * b11;
        mem[base + 10] = a10 * b00 + a11 * b10;
        mem[base + 11] = a10 * b01 + a11 * b11;
        return 0;
    }";
    let f = parse_function(src).unwrap();
    let base = 8192i64;
    let a = [1i64, 2, 3, 4];
    let b = [5i64, 6, 7, 8];
    let mut mem: Vec<(i64, i64)> = Vec::new();
    for (i, &v) in a.iter().chain(b.iter()).enumerate() {
        mem.push((base + i as i64, v));
    }
    for machine in [archs::example_arch(4), archs::dsp_arch(4)] {
        check_function(&f, machine, CodegenOptions::heuristics_on(), &[base], &mem).unwrap();
    }
    // C = [[19,22],[43,50]].
    let mut interp = aviv_ir::Interpreter::new(&f);
    interp.args(&[base]);
    for &(addr, v) in &mem {
        interp.poke(addr, v);
    }
    let r = interp.run().unwrap();
    assert_eq!(
        (0..4)
            .map(|i| r.memory[&(base + 8 + i)])
            .collect::<Vec<_>>(),
        vec![19, 22, 43, 50]
    );
}

#[test]
fn popcount_via_shifts() {
    let src = "func popcount(x) {
        count = 0;
        i = 0;
    head:
        if (i >= 16) goto done;
        bit = x & 1;
        count = count + bit;
        x = x >> 1;
        i = i + 1;
        goto head;
    done:
        return count;
    }";
    let f = parse_function(src).unwrap();
    for x in [0i64, 1, 0b1011, 0xffff, 0x5555] {
        check_function(
            &f,
            archs::wide_arch(4),
            CodegenOptions::heuristics_on(),
            &[x],
            &[],
        )
        .unwrap_or_else(|e| panic!("x={x}: {e}"));
    }
    assert_eq!(
        aviv_ir::run_function(&f, &[0b1011]).unwrap().return_value,
        Some(3)
    );
}

#[test]
fn clamped_moving_average() {
    // A windowed average with saturation, DSP-style.
    let src = "func avg4(base, lo, hi) {
        s = mem[base] + mem[base + 1];
        s = s + mem[base + 2] + mem[base + 3];
        a = s / 4;
        a = max(min(a, hi), lo);
        return a;
    }";
    let f = parse_function(src).unwrap();
    let base = 2048i64;
    let mem = [
        (base, 10i64),
        (base + 1, 20),
        (base + 2, 90),
        (base + 3, 40),
    ];
    check_function(
        &f,
        archs::wide_arch(4),
        CodegenOptions::heuristics_on(),
        &[base, 0, 35],
        &mem,
    )
    .unwrap();
    let mut interp = aviv_ir::Interpreter::new(&f);
    interp.args(&[base, 0, 35]);
    for &(a, v) in &mem {
        interp.poke(a, v);
    }
    assert_eq!(interp.run().unwrap().return_value, Some(35)); // clamped
}
