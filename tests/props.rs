//! The capstone property test (DESIGN.md invariant 4): for random
//! programs on random architectures, the generated VLIW code — simulated
//! cycle by cycle — computes exactly what the reference interpreter
//! computes. Plus invariant 6: the machine-independent optimizations
//! preserve interpreter semantics.

use aviv::CodegenOptions;
use aviv_ir::randdag::{random_block, RandDagConfig};
use aviv_ir::{opt, run_function, Op};
use aviv_isdl::archs;
use aviv_vm::check_function;
use proptest::prelude::*;

fn cfg(n_ops: usize) -> RandDagConfig {
    RandDagConfig {
        n_ops,
        n_inputs: 3,
        ops: vec![Op::Add, Op::Sub, Op::Mul, Op::Add, Op::Mul],
        n_outputs: 2,
        locality: 0.5,
        const_prob: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn generated_code_is_always_faithful(
        seed in 0u64..100_000,
        n_ops in 2usize..12,
        arch_pick in 0usize..5,
        a0 in -1000i64..1000,
        a1 in -1000i64..1000,
        a2 in -1000i64..1000,
    ) {
        let machine = match arch_pick {
            0 => archs::example_arch(4),
            1 => archs::example_arch(2),
            2 => archs::arch_two(4),
            3 => archs::wide_arch(3),
            _ => archs::single_alu(4),
        };
        let f = random_block(&cfg(n_ops), seed);
        check_function(
            &f,
            machine,
            CodegenOptions::heuristics_on(),
            &[a0, a1, a2],
            &[],
        )
        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn mac_machine_is_faithful(
        seed in 0u64..100_000,
        n_ops in 2usize..10,
        a0 in -100i64..100,
        a1 in -100i64..100,
        a2 in -100i64..100,
    ) {
        let f = random_block(&cfg(n_ops), seed);
        check_function(
            &f,
            archs::dsp_arch(4),
            CodegenOptions::heuristics_on(),
            &[a0, a1, a2],
            &[],
        )
        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn optimizations_preserve_semantics(
        seed in 0u64..100_000,
        n_ops in 2usize..20,
        a0 in -1000i64..1000,
        a1 in -1000i64..1000,
        a2 in -1000i64..1000,
    ) {
        let f = random_block(&cfg(n_ops), seed);
        let args = [a0, a1, a2];
        let before = run_function(&f, &args).unwrap();
        let mut opt_f = f.clone();
        opt::fold_constants(&mut opt_f);
        opt_f.validate().map_err(TestCaseError::fail)?;
        let after = run_function(&opt_f, &args).unwrap();
        // Every named variable agrees (addresses are stable across the
        // rewrite because the symbol table is shared).
        prop_assert_eq!(before.memory, after.memory);
        prop_assert_eq!(before.return_value, after.return_value);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn chained_architecture_is_faithful(
        seed in 0u64..100_000,
        n_ops in 2usize..8,
        a0 in -100i64..100,
        a1 in -100i64..100,
        a2 in -100i64..100,
    ) {
        // Only add/sub/mul exist across the two units of the chained
        // machine (mul only on U2, compl/sub only on U1).
        let f = random_block(
            &RandDagConfig {
                n_ops,
                n_inputs: 3,
                ops: vec![Op::Add, Op::Sub, Op::Mul],
                n_outputs: 1,
                locality: 0.5,
                const_prob: 0.0,
            },
            seed,
        );
        check_function(
            &f,
            archs::chained_arch(4),
            CodegenOptions::heuristics_on(),
            &[a0, a1, a2],
            &[],
        )
        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn constants_as_immediates_are_faithful(
        seed in 0u64..100_000,
        n_ops in 2usize..12,
        a0 in -50i64..50,
        a1 in -50i64..50,
        a2 in -50i64..50,
    ) {
        // Heavy immediate traffic: a third of operands are constants.
        let mut c = cfg(n_ops);
        c.const_prob = 0.35;
        let f = random_block(&c, seed);
        check_function(
            &f,
            archs::example_arch(4),
            CodegenOptions::heuristics_on(),
            &[a0, a1, a2],
            &[],
        )
        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn binary_round_trip_on_random_programs(
        seed in 0u64..100_000,
        n_ops in 2usize..10,
    ) {
        let f = random_block(&cfg(n_ops), seed);
        let gen = aviv::CodeGenerator::new(archs::example_arch(4));
        let (program, _) = gen
            .compile_function(&f)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let bytes = aviv_vm::assemble(&program);
        let back = aviv_vm::disassemble(&bytes)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(program, back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn simplify_then_compile_is_faithful(
        seed in 0u64..100_000,
        n_ops in 2usize..12,
        a0 in -50i64..50,
        a1 in -50i64..50,
        a2 in -50i64..50,
    ) {
        let mut c = cfg(n_ops);
        c.const_prob = 0.3;
        let mut f = random_block(&c, seed);
        let before = run_function(&f, &[a0, a1, a2]).unwrap();
        aviv_ir::simplify::simplify(&mut f);
        aviv_ir::simplify::strength_reduce(&mut f);
        opt::fold_constants(&mut f);
        f.validate().map_err(TestCaseError::fail)?;
        let after = run_function(&f, &[a0, a1, a2]).unwrap();
        prop_assert_eq!(before.return_value, after.return_value);
        // Strength reduction introduces shifts the example arch lacks;
        // compile on a machine with full coverage.
        check_function(
            &f,
            archs::wide_arch(4),
            CodegenOptions::heuristics_on(),
            &[a0, a1, a2],
            &[],
        )
        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn packed_encoding_round_trips_random_programs(
        seed in 0u64..100_000,
        n_ops in 2usize..10,
    ) {
        let f = random_block(&cfg(n_ops), seed);
        // The DSP machine exercises complex (MAC) opcodes in the stream.
        let gen = aviv::CodeGenerator::new(archs::dsp_arch(4));
        let (program, _) = gen
            .compile_function(&f)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let (bytes, bits) = aviv_vm::encode_packed(gen.target(), &program)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert!(bits <= bytes.len() * 8);
        let decoded =
            aviv_vm::decode_packed(gen.target(), &bytes, program.instructions.len())
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        // Compare modulo debug names (not part of the ROM image).
        for (a, b) in program.instructions.iter().zip(&decoded) {
            prop_assert_eq!(&a.slots, &b.slots);
            prop_assert_eq!(&a.control, &b.control);
            prop_assert_eq!(a.xfers.len(), b.xfers.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn asymmetric_banks_are_faithful(
        seed in 0u64..100_000,
        n_ops in 2usize..12,
        a0 in -50i64..50,
        a1 in -50i64..50,
        a2 in -50i64..50,
    ) {
        // The accumulator DSP has an 8-register general bank and a
        // 3-register MAC bank: per-bank pressure must be tracked
        // independently.
        let f = random_block(&cfg(n_ops), seed);
        check_function(
            &f,
            archs::accumulator_dsp(),
            CodegenOptions::heuristics_on(),
            &[a0, a1, a2],
            &[],
        )
        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn quad_vliw_with_two_buses_is_faithful(
        seed in 0u64..100_000,
        n_ops in 2usize..14,
        a0 in -50i64..50,
        a1 in -50i64..50,
        a2 in -50i64..50,
    ) {
        // Two capacity-1 buses: transfer-path alternatives exercise the
        // §IV-B selection heuristic on every compile.
        let f = random_block(&cfg(n_ops), seed);
        check_function(
            &f,
            archs::quad_vliw(4),
            CodegenOptions::heuristics_on(),
            &[a0, a1, a2],
            &[],
        )
        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}
