//! Translation-validation capstone: for every bundled machine×program
//! pair — and for random functions on every bundled machine — the
//! emitted assembly must (1) survive a byte-identical parse→re-emit
//! round trip and (2) be statically proven congruent to its source by
//! `aviv_verify::tv`, at every worker count, cold and cache-warm, and
//! under spill-all starvation budgets. Seeded bad mutations of real
//! output must each be caught with their pinned `T` code.

use aviv::verify::{parse_asm, render_asm, validate_asm, Code, TvReport};
use aviv::{CodeGenerator, CodegenOptions, PlanCache};
use aviv_ir::randdag::{random_function, RandDagConfig};
use aviv_ir::{parse_function, Function, Op};
use aviv_isdl::{parse_machine, Machine};
use aviv_vm::check_function;
use proptest::prelude::*;
use std::sync::Arc;

fn asset(name: &str) -> String {
    std::fs::read_to_string(format!("{}/assets/{name}", env!("CARGO_MANIFEST_DIR")))
        .unwrap_or_else(|e| panic!("cannot read bundled asset {name}: {e}"))
}

fn bundled_machines() -> Vec<(&'static str, Machine)> {
    ["fig3.isdl", "archII.isdl", "dsp_mac.isdl"]
        .into_iter()
        .map(|n| (n, parse_machine(&asset(n)).expect("bundled machine parses")))
        .collect()
}

fn bundled_programs() -> Vec<(&'static str, Function)> {
    ["dot4.av", "sum_loop.av"]
        .into_iter()
        .map(|n| {
            (
                n,
                parse_function(&asset(n)).expect("bundled program parses"),
            )
        })
        .collect()
}

/// Compile `f` and return the rendered assembly.
fn compile(f: &Function, machine: Machine, options: CodegenOptions) -> String {
    let generator = CodeGenerator::new(machine).options(options);
    let (program, _) = generator
        .compile_function(f)
        .expect("bundled pair compiles");
    program.render(generator.target())
}

fn assert_clean(report: &TvReport, context: &str) {
    assert!(
        report.ok(),
        "{context}: validation failed:\n{:?}",
        report.diagnostics
    );
    assert!(report.blocks > 0, "{context}: no blocks checked");
    assert!(
        report.obligations > 0,
        "{context}: no obligations discharged"
    );
}

#[test]
fn bundled_pairs_round_trip_and_validate_at_every_worker_count() {
    for (mn, machine) in bundled_machines() {
        for (pn, f) in bundled_programs() {
            for jobs in [1usize, 4, 0] {
                let options = CodegenOptions::heuristics_on().with_jobs(jobs);
                let asm = compile(&f, machine.clone(), options);
                let context = format!("{mn}×{pn} jobs={jobs}");

                // Satellite pin: the emitted grammar is exactly what the
                // parser understands — parse-then-re-emit is the identity
                // on bytes.
                let parsed = parse_asm(&asm, &machine)
                    .unwrap_or_else(|d| panic!("{context}: parse failed: {d:?}"));
                assert_eq!(render_asm(&parsed, &machine), asm, "{context}: round trip");

                assert_clean(&validate_asm(&f, &asm, &machine), &context);
            }
        }
    }
}

#[test]
fn spill_all_degraded_compiles_still_validate() {
    for (mn, machine) in bundled_machines() {
        for (pn, f) in bundled_programs() {
            let options = CodegenOptions::heuristics_on().with_fuel(Some(1));
            let asm = compile(&f, machine.clone(), options);
            let context = format!("{mn}×{pn} fuel=1");
            let parsed = parse_asm(&asm, &machine)
                .unwrap_or_else(|d| panic!("{context}: parse failed: {d:?}"));
            assert_eq!(render_asm(&parsed, &machine), asm, "{context}: round trip");
            assert_clean(&validate_asm(&f, &asm, &machine), &context);
        }
    }
}

#[test]
fn cache_warm_compiles_validate_identically() {
    let cache = Arc::new(PlanCache::new(256));
    for (mn, machine) in bundled_machines() {
        for (pn, f) in bundled_programs() {
            let context = format!("{mn}×{pn}");
            let mut rendered = Vec::new();
            for round in ["cold", "warm"] {
                let generator = CodeGenerator::new(machine.clone())
                    .options(CodegenOptions::heuristics_on())
                    .with_cache(Arc::clone(&cache));
                let (program, report) = generator
                    .compile_function(&f)
                    .expect("bundled pair compiles");
                if round == "warm" {
                    assert!(
                        report.cache_hits > 0,
                        "{context}: warm run missed the cache"
                    );
                }
                let asm = program.render(generator.target());
                assert_clean(
                    &validate_asm(&f, &asm, &machine),
                    &format!("{context} {round}"),
                );
                rendered.push(asm);
            }
            assert_eq!(
                rendered[0], rendered[1],
                "{context}: cache changed the bytes"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Seeded bad-mutation corpus: each mutation of real emitted output must
// be caught with its pinned `T` code.
// ---------------------------------------------------------------------

fn fig3() -> Machine {
    parse_machine(&asset("fig3.isdl")).unwrap()
}

fn compiled_pair(program: &str) -> (Function, String) {
    let f = parse_function(&asset(program)).unwrap();
    let asm = compile(&f, fig3(), CodegenOptions::heuristics_on());
    (f, asm)
}

/// Swap the `{ ... }` bodies of instructions `i` and `j` (the printed
/// indices stay in place, so the mutation reorders the packets' work).
fn swap_bodies(asm: &str, i: usize, j: usize) -> String {
    let body_of = |line: &str| line.split_once(": {").map(|(_, b)| format!("{{{b}"));
    let mut lines: Vec<String> = asm.lines().map(str::to_string).collect();
    let (mut bi, mut bj) = (None, None);
    for (li, line) in lines.iter().enumerate() {
        if line.trim_start().starts_with(&format!("{i}: {{")) {
            bi = Some(li);
        }
        if line.trim_start().starts_with(&format!("{j}: {{")) {
            bj = Some(li);
        }
    }
    let (bi, bj) = (
        bi.expect("instruction i present"),
        bj.expect("instruction j present"),
    );
    let body_i = body_of(&lines[bi]).unwrap();
    let body_j = body_of(&lines[bj]).unwrap();
    lines[bi] = format!("  {i:4}: {body_j}");
    lines[bj] = format!("  {j:4}: {body_i}");
    lines.join("\n") + "\n"
}

fn codes(report: &TvReport) -> Vec<Code> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn swapped_branch_condition_operands_are_caught() {
    // sum_loop's loop test is `cmpge i, n`; swapping the operands of a
    // non-commutative comparison changes the branch condition.
    let (f, asm) = compiled_pair("sum_loop.av");
    let line = asm
        .lines()
        .find(|l| l.contains("cmpge "))
        .expect("sum_loop compiles to a cmpge");
    let (head, args) = line.split_once("cmpge ").unwrap();
    let parts: Vec<&str> = args.trim_end_matches(" }").split(", ").collect();
    assert_eq!(parts.len(), 3, "{line}");
    let swapped = format!("{head}cmpge {}, {}, {} }}", parts[0], parts[2], parts[1]);
    let mutated = asm.replace(line, &swapped);
    assert_ne!(mutated, asm);
    let report = validate_asm(&f, &mutated, &fig3());
    assert!(
        codes(&report).contains(&Code::T005),
        "expected T005 (branch-condition divergence), got {:?}",
        report.diagnostics
    );
}

#[test]
fn dropped_store_transfer_is_caught() {
    // Erase the packet that stores `acc` back to memory: the exit-live
    // variable is never written by the emitted code.
    let (f, asm) = compiled_pair("dot4.av");
    let line = asm
        .lines()
        .find(|l| l.contains(";acc"))
        .expect("dot4 stores acc");
    let (head, _) = line.split_once('{').unwrap();
    let mutated = asm.replace(line, &format!("{head}{{ nop }}"));
    let report = validate_asm(&f, &mutated, &fig3());
    assert!(
        codes(&report).contains(&Code::T003),
        "expected T003 (named-variable divergence), got {:?}",
        report.diagnostics
    );
}

#[test]
fn reordered_packets_are_caught() {
    // Swapping two dependent packets changes the dataflow: a value is
    // consumed before the packet that produces it has run.
    let (f, asm) = compiled_pair("dot4.av");
    let mutated = swap_bodies(&asm, 1, 2);
    let report = validate_asm(&f, &mutated, &fig3());
    assert!(
        !report.ok(),
        "reordered packets validated clean:\n{mutated}"
    );
    let got = codes(&report);
    assert!(
        got.contains(&Code::T006) || got.contains(&Code::T003) || got.contains(&Code::T005),
        "expected a dataflow divergence, got {:?}",
        report.diagnostics
    );
}

#[test]
fn retargeted_jump_is_caught_as_control_mismatch() {
    let (f, asm) = compiled_pair("sum_loop.av");
    assert!(asm.contains("jmp @2"), "{asm}");
    let mutated = asm.replace("jmp @2", "jmp @3");
    let report = validate_asm(&f, &mutated, &fig3());
    assert!(
        codes(&report).contains(&Code::T002),
        "expected T002 (control-structure mismatch), got {:?}",
        report.diagnostics
    );
}

#[test]
fn garbage_assembly_is_a_parse_error() {
    let (f, asm) = compiled_pair("dot4.av");
    let mutated = asm.replace("mul", "frobnicate");
    let report = validate_asm(&f, &mutated, &fig3());
    assert!(
        codes(&report).contains(&Code::T001),
        "expected T001 (parse error), got {:?}",
        report.diagnostics
    );
}

#[test]
fn wrong_machine_header_is_rejected() {
    let (f, asm) = compiled_pair("dot4.av");
    let mutated = asm.replace("; machine Example", "; machine Elsewhere");
    let report = validate_asm(&f, &mutated, &fig3());
    assert!(
        codes(&report).contains(&Code::T001),
        "expected T001 (machine-name mismatch), got {:?}",
        report.diagnostics
    );
}

// ---------------------------------------------------------------------
// Validator-vs-oracle agreement: on random functions across every
// bundled machine and worker count, the static verdict must agree with
// the VM differential oracle.
// ---------------------------------------------------------------------

fn rand_cfg(n_ops: usize) -> RandDagConfig {
    RandDagConfig {
        n_ops,
        n_inputs: 3,
        ops: vec![Op::Add, Op::Sub, Op::Mul, Op::Add],
        n_outputs: 2,
        locality: 0.5,
        const_prob: 0.2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn validator_agrees_with_vm_oracle_on_random_functions(
        seed in 0u64..100_000,
        n_blocks in 1usize..5,
        n_ops in 2usize..10,
        machine_pick in 0usize..3,
        jobs_pick in 0usize..3,
        a0 in -1000i64..1000,
        a1 in -1000i64..1000,
        a2 in -1000i64..1000,
    ) {
        let (name, machine) = bundled_machines().swap_remove(machine_pick);
        let jobs = [1usize, 4, 0][jobs_pick];
        let f = random_function(&rand_cfg(n_ops), n_blocks, seed);
        let options = CodegenOptions::heuristics_on().with_jobs(jobs);

        // Static verdict: the emitted assembly is congruent to the source.
        let generator = CodeGenerator::new(machine.clone()).options(options.clone());
        let (program, _) = generator
            .compile_function(&f)
            .map_err(|e| TestCaseError::fail(format!("{name}: compile: {e}")))?;
        let asm = program.render(generator.target());
        let tv = validate_asm(&f, &asm, &machine);
        prop_assert!(
            tv.ok(),
            "{}: validator refuted a compile the generator claims correct: {:?}",
            name,
            tv.diagnostics
        );

        // Dynamic verdict: the VM differential oracle must agree.
        check_function(&f, machine, options, &[a0, a1, a2], &[])
            .map_err(|e| TestCaseError::fail(format!("{name}: oracle disagrees: {e}")))?;
    }
}
