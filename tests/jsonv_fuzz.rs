//! Malformed-input fuzz for the `jsonv` parser — the front door of the
//! `avivd` NDJSON protocol. Every byte of a request line flows through
//! [`aviv::jsonv::parse`] before anything else looks at it, so the
//! parser's contract under hostile input is the server's first line of
//! defense: parse or return a structured [`JsonError`], never panic,
//! never hang, never allocate unboundedly.
//!
//! The generator is a seeded xorshift so failures replay exactly; the
//! inputs are the shapes a chaotic client actually produces — truncated
//! valid documents, bit-flipped valid documents, random garbage, and
//! adversarial nesting.

use aviv::jsonv::{self, Json};

/// Deterministic xorshift64* — no dependency, stable across platforms,
/// failures reproduce from the printed seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A pool of valid protocol-shaped documents to mutate.
fn valid_documents() -> Vec<String> {
    vec![
        r#"{"op":"ping"}"#.into(),
        r#"{"id":7,"op":"stats"}"#.into(),
        r#"{"id":"req-a","op":"cancel"}"#.into(),
        r#"{"id":1,"op":"compile","machine":"machine M { }","program":"func f(a) { return a; }","jobs":4,"fuel":100,"validate":true}"#.into(),
        r#"{"nested":{"a":[1,2,3],"b":{"c":null,"d":false}},"num":-1.5e3,"esc":"a\"b\\c\ndA"}"#.into(),
        "[]".into(),
        "{}".into(),
        "null".into(),
        "-0.0".into(),
        r#""just a string""#.into(),
    ]
}

/// The property under test: parsing terminates with Ok or a located
/// error and a second parse of the same input agrees (determinism).
fn parse_is_total(input: &str) {
    let first = jsonv::parse(input);
    let second = jsonv::parse(input);
    match (&first, &second) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "nondeterministic parse of {input:?}"),
        (Err(a), Err(b)) => {
            assert_eq!((a.at, &a.message), (b.at, &b.message));
            assert!(a.at <= input.len(), "error offset out of range");
        }
        _ => panic!("parse of {input:?} is nondeterministic (Ok vs Err)"),
    }
}

#[test]
fn truncations_of_valid_documents_never_panic() {
    for doc in valid_documents() {
        for cut in 0..doc.len() {
            if doc.is_char_boundary(cut) {
                parse_is_total(&doc[..cut]);
            }
        }
    }
}

#[test]
fn seeded_byte_mutations_never_panic() {
    let docs = valid_documents();
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 1);
        for _ in 0..200 {
            let mut bytes = docs[rng.below(docs.len())].clone().into_bytes();
            for _ in 0..=rng.below(4) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.below(bytes.len());
                match rng.below(3) {
                    0 => bytes[at] = (rng.next() & 0x7f) as u8, // flip to random ASCII
                    1 => {
                        bytes.remove(at);
                    }
                    _ => bytes.insert(at, b"{}[],:\"0 \\x"[rng.below(11)]),
                }
            }
            // Mutations may break UTF-8; the protocol reads lines as
            // &str, so only valid-UTF-8 mutants reach the parser.
            if let Ok(s) = String::from_utf8(bytes) {
                parse_is_total(&s);
            }
        }
    }
}

#[test]
fn seeded_garbage_never_panics() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(seed + 1);
        for _ in 0..100 {
            let len = rng.below(64);
            let s: String = (0..len)
                .map(|_| char::from_u32((rng.next() % 0xff) as u32).unwrap_or('?'))
                .collect();
            parse_is_total(&s);
        }
    }
}

#[test]
fn adversarial_nesting_errors_instead_of_overflowing_the_stack() {
    // A recursive-descent parser with no depth bound dies by stack
    // overflow (an abort — not catchable) on inputs like this. The
    // parser must answer with a structured error instead.
    for open in ["[", "{\"k\":"] {
        let deep: String = open.repeat(100_000);
        let err = jsonv::parse(&deep).expect_err("unterminated nesting cannot parse");
        assert!(err.message.contains("nesting too deep"), "{}", err.message);
    }
    // Properly closed but absurdly deep: same answer.
    let balanced = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
    assert!(jsonv::parse(&balanced).is_err());
    // Depth within the bound still parses.
    let shallow = format!("{}1{}", "[".repeat(64), "]".repeat(64));
    assert!(jsonv::parse(&shallow).is_ok());
}

#[test]
fn escape_round_trips_through_the_parser() {
    let mut rng = Rng::new(0xfeed);
    for _ in 0..500 {
        let len = rng.below(32);
        let s: String = (0..len)
            .map(|_| char::from_u32((rng.next() % 0x1_0000) as u32).unwrap_or('\u{fffd}'))
            .collect();
        let doc = format!("\"{}\"", jsonv::escape(&s));
        match jsonv::parse(&doc) {
            Ok(Json::Str(back)) => assert_eq!(back, s, "escape/parse mismatch"),
            other => panic!("escaped string failed to parse: {other:?} from {doc:?}"),
        }
    }
}
