//! Cross-crate integration tests: the full Fig. 1 toolchain on whole
//! programs (front end → optimizations → code generation → assembler →
//! simulator) checked against the reference interpreter.

use aviv::{CodeGenerator, CodegenOptions};
use aviv_ir::{opt, parse_function, BlockId, MemLayout};
use aviv_isdl::archs;
use aviv_vm::{assemble, check_function, disassemble, Simulator};

#[test]
fn gcd_runs_on_every_architecture() {
    let src = "func gcd(a, b) {
    head:
        if (b == 0) goto done;
        t = b;
        r = a - b;
        if (r >= 0) goto sub_ok;
        r = a;
    sub_ok:
        a = t;
        b = r - t;
        if (b >= 0) goto head;
        b = r;
        goto head;
    done:
        return a;
    }";
    // A simplified gcd-like iteration (not Euclid's, but deterministic
    // and loopy); what matters is that compiled control flow behaves
    // exactly like the interpreter on several machines.
    let f = parse_function(src).unwrap();
    for machine in [
        archs::example_arch(4),
        archs::arch_two(4),
        archs::dsp_arch(4),
        archs::single_alu(4),
        archs::wide_arch(4),
        archs::chained_arch(4),
    ] {
        let name = machine.name.clone();
        check_function(&f, machine, CodegenOptions::heuristics_on(), &[48, 18], &[])
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn optimization_pipeline_then_codegen() {
    let src = "func f(a, n) {
        k = 2 + 3;
        s = 0;
        i = 0;
    head:
        s = s + a * k;
        i = i + 1;
        if (i < n) goto head;
        return s;
    }";
    let mut f = parse_function(src).unwrap();
    opt::fold_constants(&mut f);
    opt::unroll_self_loop(&mut f, BlockId(1), 2).unwrap();
    opt::fold_constants(&mut f);
    f.validate().unwrap();
    check_function(
        &f,
        archs::example_arch(4),
        CodegenOptions::heuristics_on(),
        &[7, 6],
        &[],
    )
    .unwrap();
}

#[test]
fn binary_round_trip_on_control_flow_program() {
    let src = "func clamp_sum(a, b, lo, hi) {
        s = a + b;
        if (s >= lo) goto check_hi;
        s = lo;
        goto done;
    check_hi:
        if (s <= hi) goto done;
        s = hi;
    done:
        return s;
    }";
    let f = parse_function(src).unwrap();
    let gen = CodeGenerator::new(archs::example_arch(4));
    let (program, _) = gen.compile_function(&f).unwrap();
    let bytes = assemble(&program);
    let loaded = disassemble(&bytes).unwrap();
    assert_eq!(program, loaded);
    for (a, b, lo, hi) in [(5, 7, 0, 100), (5, 7, 20, 100), (90, 80, 0, 100)] {
        let mut sim = Simulator::new(gen.target(), &loaded);
        sim.set_var("a", a)
            .set_var("b", b)
            .set_var("lo", lo)
            .set_var("hi", hi);
        let got = sim.run().unwrap().return_value.unwrap();
        let want = (a + b).clamp(lo, hi);
        assert_eq!(got, want, "clamp_sum({a},{b},{lo},{hi})");
    }
}

#[test]
fn spilled_code_is_still_faithful_at_two_registers() {
    let src = "func f(a, b, c, d, e, g, h, i) {
        t1 = a * b + c;
        t2 = d * e + g;
        t3 = t1 - t2;
        t4 = t1 * h;
        t5 = t2 + i;
        out = (t3 + t4) - t5;
    }";
    let f = parse_function(src).unwrap();
    for regs in [2, 3, 4] {
        check_function(
            &f,
            archs::example_arch(regs),
            CodegenOptions::heuristics_on(),
            &[1, 2, 3, 4, 5, 6, 7, 8],
            &[],
        )
        .unwrap_or_else(|e| panic!("regs={regs}: {e}"));
    }
}

#[test]
fn baseline_output_simulates_correctly() {
    use aviv::{ControlOp, VliwProgram};
    let src = "func f(a, b, c) { x = (a + b) * c; y = x - a; }";
    let f = parse_function(src).unwrap();
    let base = aviv_baseline::BaselineGenerator::new(archs::example_arch(4));
    let mut syms = f.syms.clone();
    let mut layout = MemLayout::for_function(&f);
    let r = base
        .compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
        .unwrap();
    // Wrap the block in a program with an explicit return.
    let mut instructions = r.instructions.clone();
    let mut ret = aviv::VliwInstruction::nop(base.target().machine.units().len());
    ret.control = Some(ControlOp::Return(None));
    instructions.push(ret);
    let program = VliwProgram {
        machine_name: base.target().machine.name.clone(),
        instructions,
        block_starts: vec![0],
        var_addrs: syms
            .iter()
            .map(|(s, n)| (n.to_string(), layout.addr(s)))
            .collect(),
    };
    let mut sim = Simulator::new(base.target(), &program);
    sim.set_var("a", 3).set_var("b", 4).set_var("c", 5);
    let result = sim.run().unwrap();
    assert_eq!(sim.read_var("x"), Some(35));
    assert_eq!(sim.read_var("y"), Some(32));
    assert!(result.cycles >= r.size);
}

#[test]
fn exploration_modes_agree_semantically() {
    // Different heuristic settings may produce different schedules but
    // must compute the same function.
    let src = "func f(a, b, c, d) { x = (a - b) * (c + d); y = x + b * c; return y; }";
    let f = parse_function(src).unwrap();
    for options in [
        CodegenOptions::heuristics_on(),
        CodegenOptions::thorough(),
        CodegenOptions::heuristics_off(),
    ] {
        check_function(&f, archs::example_arch(4), options, &[9, 3, 2, 5], &[]).unwrap();
    }
}

#[test]
fn compilation_is_deterministic() {
    // Hash-map iteration must never leak into codegen decisions: the
    // same input compiles to the identical program every time.
    let src = "func f(a, b, c, d) {
        x = (a + b) * (c - d);
        y = x * a + b;
        if (y > 0) goto pos;
        y = 0 - y;
    pos:
        return y;
    }";
    let f = parse_function(src).unwrap();
    let mut first: Option<aviv::VliwProgram> = None;
    for round in 0..5 {
        let gen = CodeGenerator::new(archs::example_arch(4));
        let (program, _) = gen.compile_function(&f).unwrap();
        match &first {
            None => first = Some(program),
            Some(p) => assert_eq!(p, &program, "nondeterminism on round {round}"),
        }
    }
}

#[test]
fn derived_machines_compile_like_builtins() {
    // The paper's Table II derivation via the machine-editing API must
    // behave exactly like the hand-built arch_two.
    use aviv_ir::Op;
    let derived = archs::example_arch(4)
        .without_op("U1", Op::Sub)
        .unwrap()
        .without_unit("U3")
        .unwrap()
        .renamed("ArchII");
    let src = "func f(a, b, c) { x = (a - b) * c; y = x + a; }";
    let f = parse_function(src).unwrap();
    let sizes: Vec<usize> = [derived, archs::arch_two(4)]
        .into_iter()
        .map(|machine| {
            let gen = CodeGenerator::new(machine);
            let mut syms = f.syms.clone();
            let mut layout = MemLayout::for_function(&f);
            gen.compile_block(&f.blocks[0].dag, &mut syms, &mut layout)
                .unwrap()
                .report
                .instructions
        })
        .collect();
    assert_eq!(sizes[0], sizes[1]);
}
