//! The robustness capstone: under deterministic fault injection and
//! starvation budgets, the code generator must (1) never let a panic
//! escape `compile_function`, (2) turn every injected fault into a
//! stable diagnostic or a recorded downgrade, (3) stay byte-identical
//! across worker counts, and (4) keep every *successful* compile —
//! however degraded — faithful to the reference interpreter.
//!
//! Fault tests run with the pipeline invariant verifier ON: malformed
//! intermediate state is only guaranteed to surface as a structured
//! failure (rather than silently-wrong code) when the verifier audits
//! each stage boundary.

use aviv::verify::{validate_asm, Code};
use aviv::{
    CodeGenerator, CodegenError, CodegenOptions, CoverMode, Exhaustion, FaultConfig, FaultKind,
    Stage, INJECTED_PANIC,
};
use aviv_ir::randdag::{random_block, random_function, RandDagConfig};
use aviv_ir::{Function, Op};
use aviv_isdl::{archs, Machine};
use aviv_vm::{check_function, DiffError};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Silence the default panic-hook spew for panics the harness *expects*:
/// injected panics and the downstream panics a malformed intermediate
/// state is designed to trigger (all are caught by the generator's
/// isolation boundaries; the hook runs before the catch).
fn quiet_expected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(ToString::to_string)
                })
                .unwrap_or_default();
            let expected = msg.contains(INJECTED_PANIC)
                || msg.contains("alive nodes are scheduled")
                || msg.contains("no entry found for key");
            if !expected {
                prev(info);
            }
        }));
    });
}

fn pick_arch(i: usize) -> Machine {
    match i % 4 {
        0 => archs::example_arch(4),
        1 => archs::example_arch(2),
        2 => archs::wide_arch(3),
        _ => archs::dsp_arch(4),
    }
}

fn rand_cfg(n_ops: usize) -> RandDagConfig {
    RandDagConfig {
        n_ops,
        n_inputs: 3,
        ops: vec![Op::Add, Op::Sub, Op::Mul, Op::Add],
        n_outputs: 2,
        locality: 0.5,
        const_prob: 0.0,
    }
}

fn faulty_options(faults: FaultConfig) -> CodegenOptions {
    CodegenOptions::heuristics_on()
        .with_verify(true)
        .with_faults(Some(faults))
}

/// Compile under `options`, asserting that no panic escapes. Returns the
/// generator's result.
fn compile_isolated(
    f: &Function,
    machine: Machine,
    options: CodegenOptions,
) -> Result<(aviv::VliwProgram, aviv::CompileReport), CodegenError> {
    quiet_expected_panics();
    let gen = CodeGenerator::new(machine).options(options);
    catch_unwind(AssertUnwindSafe(|| gen.compile_function(f)))
        .expect("no panic may escape compile_function")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Invariant (1): for random programs, random machines, and every
    /// fault kind at every stage, `compile_function` returns a Result —
    /// it never panics and never hangs.
    #[test]
    fn no_panic_escapes_under_fault_injection(
        seed in 0u64..100_000,
        n_blocks in 1usize..5,
        n_ops in 2usize..9,
        rate in 1u64..4,
        arch_pick in 0usize..4,
    ) {
        let f = random_function(&rand_cfg(n_ops), n_blocks, seed);
        let faults = FaultConfig::seeded(seed).every(rate);
        let result = compile_isolated(&f, pick_arch(arch_pick), faulty_options(faults));
        // Either outcome is fine; an error must render as a stable
        // user-facing message.
        if let Err(e) = result {
            let msg = e.to_string();
            prop_assert!(!msg.is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Invariant (3): fault decisions are a pure function of
    /// (seed, block, stage), so injection cannot break the
    /// byte-identical-across-worker-counts guarantee.
    #[test]
    fn fault_injection_is_deterministic_across_jobs(
        seed in 0u64..100_000,
        n_blocks in 2usize..6,
        n_ops in 2usize..8,
    ) {
        let f = random_function(&rand_cfg(n_ops), n_blocks, seed);
        let faults = FaultConfig::seeded(seed).every(2);
        let opts = faulty_options(faults).with_fuel(Some(200));
        let outcomes: Vec<_> = [1usize, 4, 0]
            .iter()
            .map(|&jobs| {
                compile_isolated(
                    &f,
                    archs::example_arch(4),
                    opts.clone().with_jobs(jobs),
                )
            })
            .collect();
        match &outcomes[0] {
            Ok((program, report)) => {
                for o in &outcomes[1..] {
                    let (p, r) = o.as_ref().map_err(|e| {
                        TestCaseError::fail(format!("jobs disagree: {e}"))
                    })?;
                    prop_assert_eq!(p, program, "program differs across jobs");
                    prop_assert_eq!(
                        &r.downgrades, &report.downgrades,
                        "downgrade record differs across jobs"
                    );
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for o in &outcomes[1..] {
                    prop_assert!(o.is_err(), "jobs disagree about success");
                    prop_assert_eq!(
                        o.as_ref().err().map(ToString::to_string),
                        Some(msg.clone()),
                        "error differs across jobs"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Invariant (4): starvation budgets degrade code quality, never
    /// correctness — every fuel-starved compile must terminate, succeed
    /// (the last ladder rung always terminates), and pass the
    /// differential oracle against the reference interpreter.
    #[test]
    fn fuel_starved_compiles_stay_faithful(
        seed in 0u64..100_000,
        n_ops in 2usize..10,
        fuel in 1u64..40,
        arch_pick in 0usize..4,
        a0 in -1000i64..1000,
        a1 in -1000i64..1000,
        a2 in -1000i64..1000,
    ) {
        quiet_expected_panics();
        let f = random_block(&rand_cfg(n_ops), seed);
        let options = CodegenOptions::heuristics_on()
            .with_verify(true)
            .with_fuel(Some(fuel));
        check_function(&f, pick_arch(arch_pick), options.clone(), &[a0, a1, a2], &[])
            .map_err(|e| TestCaseError::fail(format!("fuel {fuel}: {e}")))?;

        // Degraded-ladder outputs must also pass static translation
        // validation, not just the dynamic oracle.
        let machine = pick_arch(arch_pick);
        let gen = CodeGenerator::new(machine.clone()).options(options);
        let (program, _) = gen
            .compile_function(&f)
            .map_err(|e| TestCaseError::fail(format!("fuel {fuel}: compile: {e}")))?;
        let tv = validate_asm(&f, &program.render(gen.target()), &machine);
        prop_assert!(
            tv.ok(),
            "fuel {}: degraded output failed translation validation: {:?}",
            fuel,
            tv.diagnostics
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Invariant (2)+(4) combined: under fault injection, a compile that
    /// *reports success* must also be faithful. Compile errors are
    /// acceptable (the harness injects unrecoverable faults too); silent
    /// miscompiles are not.
    #[test]
    fn faulty_compiles_that_succeed_are_faithful(
        seed in 0u64..100_000,
        n_ops in 2usize..9,
        rate in 1u64..3,
        a0 in -1000i64..1000,
        a1 in -1000i64..1000,
    ) {
        quiet_expected_panics();
        let f = random_block(&rand_cfg(n_ops), seed);
        let faults = FaultConfig::seeded(seed).every(rate);
        match check_function(
            &f,
            archs::example_arch(4),
            faulty_options(faults.clone()),
            &[a0, a1, 7],
            &[],
        ) {
            Ok(()) | Err(DiffError::Compile(_)) => {}
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }

        // Same invariant, statically: any compile that reports success
        // under injection must pass translation validation.
        let machine = archs::example_arch(4);
        let gen = CodeGenerator::new(machine.clone()).options(faulty_options(faults));
        if let Ok((program, _)) = catch_unwind(AssertUnwindSafe(|| gen.compile_function(&f)))
            .expect("no panic may escape compile_function")
        {
            let tv = validate_asm(&f, &program.render(gen.target()), &machine);
            prop_assert!(
                tv.ok(),
                "faulty compile reported success but failed validation: {:?}",
                tv.diagnostics
            );
        }
    }
}

/// A two-block program with a branch, used by the targeted stage tests.
fn branchy() -> Function {
    aviv_ir::parse_function(
        "func f(a, b) { x = a * b + 1; if (x > 3) goto t; y = x + 2; t: return x; }",
    )
    .expect("fixture parses")
}

#[test]
fn panic_at_every_point_becomes_block_failed() {
    let faults = FaultConfig::seeded(0).every(1).of_kind(FaultKind::Panic);
    let result = compile_isolated(&branchy(), archs::example_arch(4), faulty_options(faults));
    match result {
        Err(CodegenError::BlockFailed { cause, .. }) => {
            assert!(cause.contains(INJECTED_PANIC), "{cause}");
        }
        other => panic!("expected BlockFailed, got {other:?}"),
    }
}

#[test]
fn single_panic_at_covering_degrades_to_sequential() {
    let faults = FaultConfig::seeded(0)
        .every(1)
        .at_stage(Stage::Cover)
        .of_kind(FaultKind::Panic);
    let (_, report) = compile_isolated(&branchy(), archs::example_arch(4), faulty_options(faults))
        .expect("one caught panic per block must not fail the compile");
    assert!(!report.complete);
    assert_eq!(report.downgrades.len(), report.blocks.len());
    for (b, d) in report.blocks.iter().zip(&report.downgrades) {
        assert_eq!(b.mode, CoverMode::Sequential);
        assert!(matches!(d.reason, aviv::DowngradeReason::Panic(_)), "{d}");
    }
}

#[test]
fn malformed_allocation_is_caught_by_the_verifier_and_degraded() {
    let faults = FaultConfig::seeded(0)
        .every(1)
        .at_stage(Stage::RegAlloc)
        .of_kind(FaultKind::Malform);
    let (_, report) = compile_isolated(&branchy(), archs::example_arch(4), faulty_options(faults))
        .expect("verifier-caught corruption must degrade, not fail");
    assert!(!report.complete);
    assert!(!report.downgrades.is_empty());
    for d in &report.downgrades {
        assert!(
            matches!(&d.reason, aviv::DowngradeReason::Error(e) if e.contains("invariant")),
            "{d}"
        );
    }
}

#[test]
fn malformed_cover_graph_degrades_with_structured_reason() {
    let faults = FaultConfig::seeded(0)
        .every(1)
        .at_stage(Stage::SplitDag)
        .of_kind(FaultKind::Malform);
    let (_, report) = compile_isolated(&branchy(), archs::example_arch(4), faulty_options(faults))
        .expect("corrupted cover graph must degrade, not fail");
    assert!(!report.complete);
    assert!(!report.downgrades.is_empty());
}

#[test]
fn injected_exhaustion_walks_the_ladder() {
    let faults = FaultConfig::seeded(0)
        .every(1)
        .at_stage(Stage::Cliques)
        .of_kind(FaultKind::Exhaust);
    let (_, report) = compile_isolated(&branchy(), archs::example_arch(4), faulty_options(faults))
        .expect("injected exhaustion must degrade, not fail");
    assert!(!report.complete);
    for d in &report.downgrades {
        assert!(
            matches!(
                d.reason,
                aviv::DowngradeReason::Budget(Exhaustion::Injected)
            ),
            "{d}"
        );
    }
}

#[test]
fn exhaustion_at_emission_is_a_budget_error() {
    let faults = FaultConfig::seeded(0)
        .every(1)
        .at_stage(Stage::Emit)
        .of_kind(FaultKind::Exhaust);
    let result = compile_isolated(&branchy(), archs::example_arch(4), faulty_options(faults));
    assert!(
        matches!(result, Err(CodegenError::Budget(Exhaustion::Injected))),
        "{result:?}"
    );
}

#[test]
fn malformed_allocation_at_emission_is_a_structured_c006() {
    // Emission-stage corruption strikes after planning, where no ladder
    // rung can retry: the hardened emitter must refuse the malformed
    // allocation with a C006 diagnostic instead of panicking.
    let faults = FaultConfig::seeded(0)
        .every(1)
        .at_stage(Stage::Emit)
        .of_kind(FaultKind::Malform);
    let result = compile_isolated(&branchy(), archs::example_arch(4), faulty_options(faults));
    match result {
        Err(CodegenError::Internal(d)) => {
            assert_eq!(d.code, Code::C006, "{d:?}");
            assert!(d.message.contains("no allocated register"), "{d:?}");
        }
        other => panic!("expected Internal(C006) at emission, got {other:?}"),
    }
}

#[test]
fn panic_at_emission_is_caught_at_the_block_boundary() {
    let faults = FaultConfig::seeded(0)
        .every(1)
        .at_stage(Stage::Emit)
        .of_kind(FaultKind::Panic);
    let result = compile_isolated(&branchy(), archs::example_arch(4), faulty_options(faults));
    match result {
        Err(CodegenError::BlockFailed { block, cause }) => {
            assert_eq!(block, 0);
            assert!(cause.contains(INJECTED_PANIC), "{cause}");
        }
        other => panic!("expected BlockFailed at emission, got {other:?}"),
    }
}

#[test]
fn default_budgets_are_byte_identical_to_unbudgeted() {
    // Bundled-asset guarantee: with budgets at their defaults (or merely
    // generous), outputs are byte-identical to a run with no budget
    // machinery at all.
    let f = branchy();
    for machine in [archs::example_arch(4), archs::wide_arch(3)] {
        let base = compile_isolated(&f, machine.clone(), CodegenOptions::heuristics_on())
            .expect("baseline compile succeeds");
        let generous = compile_isolated(
            &f,
            machine,
            CodegenOptions::heuristics_on()
                .with_fuel(Some(u64::MAX))
                .with_deadline_ms(Some(3_600_000)),
        )
        .expect("generous budget compile succeeds");
        assert_eq!(base.0, generous.0, "budget plumbing changed the output");
        assert!(generous.1.complete);
        assert!(generous.1.downgrades.is_empty());
    }
}
