#!/usr/bin/env bash
# Regenerate every experiment artifact referenced by EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT=${1:-/tmp/aviv-experiments}
mkdir -p "$OUT"
cargo build --release -q -p aviv-bench
run() { echo "== $1"; cargo run --release -q -p aviv-bench --bin "$1" -- "${@:2}" > "$OUT/$1.txt" 2>&1; }
run table1
run table2
run table_pressure
run baseline_table
run scaling
run figures
run kernel_table
run random_suite 60
echo "artifacts in $OUT"
